"""Unit tests for regex structural analyses."""

import pytest

from repro.regex.analysis import (
    alphabet,
    can_derive_over,
    min_weight_word,
    nullable,
    saturating_count,
)
from repro.regex.ast import TEXT_SYMBOL
from repro.regex.parser import parse_content_model


def _expr(text):
    return parse_content_model(text)


class TestNullable:
    @pytest.mark.parametrize(
        "model,expected",
        [
            ("EMPTY", True),
            ("a", False),
            ("#PCDATA", False),
            ("a*", True),
            ("a+", False),
            ("a?", True),
            ("(a*, b*)", True),
            ("(a*, b)", False),
            ("(a | b*)", True),
        ],
    )
    def test_cases(self, model, expected):
        assert nullable(_expr(model)) is expected


class TestAlphabet:
    def test_collects_names_and_text(self):
        assert alphabet(_expr("(a, (b | #PCDATA)*)")) == {"a", "b", TEXT_SYMBOL}

    def test_empty(self):
        assert alphabet(_expr("EMPTY")) == frozenset()


class TestCanDeriveOver:
    def test_star_always_derivable(self):
        assert can_derive_over(_expr("dead*"), frozenset())

    def test_concat_needs_all_parts(self):
        expr = _expr("(a, b)")
        assert can_derive_over(expr, {"a", "b"})
        assert not can_derive_over(expr, {"a"})

    def test_union_needs_one_part(self):
        expr = _expr("(a | b)")
        assert can_derive_over(expr, {"b"})
        assert not can_derive_over(expr, set())

    def test_text_requires_text_symbol(self):
        assert can_derive_over(_expr("#PCDATA"), {TEXT_SYMBOL})
        assert not can_derive_over(_expr("#PCDATA"), {"a"})


class TestSaturatingCount:
    def test_dead_symbol_kills_concat(self):
        assert saturating_count(_expr("(a, dead)"), {"a": 1}) is None

    def test_dead_branch_skipped_in_union(self):
        assert saturating_count(_expr("(a | dead)"), {"a": 1}) == 1

    def test_concat_sums_and_saturates(self):
        assert saturating_count(_expr("(a, a)"), {"a": 1}) == 2
        assert saturating_count(_expr("(a, a, a)"), {"a": 1}) == 2

    def test_union_takes_max(self):
        weights = {"a": 1, "b": 0}
        assert saturating_count(_expr("(a | b)"), weights) == 1

    def test_star_saturates_positive_content(self):
        assert saturating_count(_expr("a*"), {"a": 1}) == 2
        assert saturating_count(_expr("a*"), {"a": 0}) == 0
        # Star of something underivable is still the empty word.
        assert saturating_count(_expr("dead*"), {}) == 0

    def test_optional_of_dead_is_zero(self):
        assert saturating_count(_expr("dead?"), {}) == 0

    def test_plus_needs_derivable_body(self):
        assert saturating_count(_expr("dead+"), {}) is None
        assert saturating_count(_expr("a+"), {"a": 1}) == 2


class TestMinWeightWord:
    def test_min_chooses_cheapest_branch(self):
        assert min_weight_word(_expr("(a | b)"), {"a": 3, "b": 1}) == 1

    def test_concat_adds_without_saturation(self):
        assert min_weight_word(_expr("(a, a, a)"), {"a": 2}) == 6

    def test_star_is_free(self):
        assert min_weight_word(_expr("a*"), {"a": 5}) == 0

    def test_underivable_returns_none(self):
        assert min_weight_word(_expr("(a, dead)"), {"a": 1}) is None
