"""Unit tests for the session layer: fingerprints, caches, eviction.

The end-to-end guarantees (byte-identity with the direct path, batcher
coalescing) live in ``test_service_differential.py`` and
``test_service_stress.py``; this file pins the mechanisms they rest on.
"""

import pytest

from repro.checkers.config import CheckerConfig
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.encoding.combined import spec_fingerprint
from repro.errors import ReproError, SolverError
from repro.ilp.condsys import SolveWorkspace, effective_parallelism
from repro.ilp.model import LinearSystem
from repro.service.registry import SessionRegistry, default_registry
from repro.service.session import SpecSession, merge_config
from repro.workloads.generators import wide_flat_dtd


def _spec(tag: str = "a"):
    dtd = DTD.build(
        "db",
        {"db": f"({tag}*)", tag: "EMPTY"},
        attrs={tag: ["id"]},
    )
    return dtd, parse_constraints(f"{tag}.id -> {tag}")


class TestFingerprint:
    def test_stable_across_equal_specs(self):
        dtd_a, sigma_a = _spec()
        dtd_b, sigma_b = _spec()
        assert spec_fingerprint(dtd_a, sigma_a) == spec_fingerprint(
            dtd_b, sigma_b
        )

    def test_sensitive_to_constraints_and_order(self):
        dtd = wide_flat_dtd(3)
        sigma = parse_constraints("t0.x <= t1.x\nt1.x <= t2.x")
        reordered = [sigma[1], sigma[0]]
        assert spec_fingerprint(dtd, sigma) != spec_fingerprint(dtd, [])
        # Order is part of the identity: order-sensitive consumers (MUS
        # filters, row ids) must never see another ordering's session.
        assert spec_fingerprint(dtd, sigma) != spec_fingerprint(dtd, reordered)

    def test_sensitive_to_dtd(self):
        dtd_a, sigma = _spec()
        dtd_b = DTD.build("db", {"db": "(a+)", "a": "EMPTY"}, attrs={"a": ["id"]})
        assert spec_fingerprint(dtd_a, sigma) != spec_fingerprint(dtd_b, sigma)


class TestResponseCache:
    def test_repeat_requests_hit_the_cache(self):
        dtd, sigma = _spec()
        session = SpecSession(dtd, sigma)
        first = session.check()
        again = session.check()
        assert first == again
        assert session.stats.cache_hits == 1
        assert session.stats.requests == 2

    def test_different_config_is_a_different_entry(self):
        dtd, sigma = _spec()
        session = SpecSession(dtd, sigma)
        session.check()
        session.check({"want_witness": False})
        assert session.stats.cache_hits == 0

    def test_cache_is_bounded(self):
        dtd, sigma = _spec()
        session = SpecSession(dtd, sigma, max_cached_responses=2)
        documents = [f"<db><a id='{i}'/></db>" for i in range(4)]
        for document in documents:
            session.validate(document)
        assert len(session._responses) == 2
        # The evicted entry recomputes (same bytes), no crash.
        assert session.validate(documents[0])["conforms"] is True

    def test_merge_config_rejects_unknown_keys(self):
        with pytest.raises(ReproError, match="unknown config override"):
            merge_config(CheckerConfig(), {"no_such_knob": 1})

    def test_unknown_mode_rejected(self):
        dtd, sigma = _spec()
        with pytest.raises(ReproError, match="unknown session mode"):
            SpecSession(dtd, sigma, mode="turbo")


class TestBatch:
    def test_batch_equals_singles_and_caches(self):
        dtd = wide_flat_dtd(4)
        sigma = parse_constraints("t0.x <= t1.x\nt1.x <= t2.x")
        phis = ["t0.x <= t2.x", "t2.x <= t0.x", "t0.x <= t1.x"]
        batch_session = SpecSession(dtd, sigma)
        single_session = SpecSession(dtd, sigma)
        batch = batch_session.implies_batch(phis)
        singles = [single_session.implies(phi) for phi in phis]
        assert batch == singles
        # A repeat batch is served fully from the response cache.
        assert batch_session.implies_batch(phis) == batch
        assert batch_session.stats.cache_hits == len(phis)

    def test_batch_isolates_per_query_errors(self):
        dtd, sigma = _spec()
        batch = SpecSession(dtd, sigma).implies_batch(
            ["a.id -> a", "nosuch.attr -> nosuch", "not ( a constraint"]
        )
        assert batch[0]["implied"] is True
        assert batch[1]["error"]["type"] == "InvalidConstraintError"
        assert batch[2]["error"]["type"] == "ParseError"


class TestWarmMode:
    def test_warm_reuses_workspaces_and_matches_verdicts(self):
        dtd = wide_flat_dtd(5)
        sigma = parse_constraints(
            "\n".join(f"t{i}.x <= t{i + 1}.x" for i in range(3))
        )
        phis = [
            f"t{i}.x <= t{j}.x" for i in range(3) for j in range(4) if i != j
        ]
        warm = SpecSession(dtd, sigma, mode="warm")
        replay = SpecSession(dtd, sigma)
        for phi in phis:
            assert warm.implies(phi)["implied"] == replay.implies(phi)["implied"]
        assert warm.stats.workspaces_built == len(phis)
        # Force re-solves on the warm workspaces (drop only responses).
        warm._responses.clear()
        warm._response_bytes = 0
        for phi in phis:
            assert warm.implies(phi)["implied"] == replay.implies(phi)["implied"]
        assert warm.stats.workspaces_reused == len(phis)
        assert warm.stats.workspaces_built == len(phis)

    def test_workspace_checkout_is_single_owner(self):
        base = LinearSystem()
        base.add_ge({("ext", "r"): 1}, 1)
        workspace = SolveWorkspace(base)
        with workspace.checkout():
            with pytest.raises(SolverError, match="already checked out"):
                with workspace.checkout():
                    pass  # pragma: no cover - the claim must raise
        with workspace.checkout():
            pass  # released after exit


class TestRegistry:
    def test_lru_eviction_by_count(self):
        registry = SessionRegistry(max_sessions=2)
        sessions = [
            registry.session_for(*_spec(tag)) for tag in ("a", "b", "c")
        ]
        stats = registry.stats()
        assert stats["sessions"] == 2
        assert stats["sessions_evicted"] == 1
        assert registry.get(sessions[0].fingerprint) is None
        assert registry.get(sessions[2].fingerprint) is sessions[2]

    def test_hit_moves_to_front(self):
        registry = SessionRegistry(max_sessions=2)
        first = registry.session_for(*_spec("a"))
        registry.session_for(*_spec("b"))
        assert registry.session_for(*_spec("a")) is first  # refresh LRU
        registry.session_for(*_spec("c"))  # evicts b, not a
        assert registry.get(first.fingerprint) is first
        assert registry.stats()["session_hits"] >= 2

    def test_byte_budget_eviction(self):
        registry = SessionRegistry(max_sessions=8, max_bytes=1)
        registry.session_for(*_spec("a"))
        registry.session_for(*_spec("b"))
        stats = registry.stats()
        # Over budget: everything but the newest admission is evicted.
        assert stats["sessions"] == 1
        assert stats["sessions_evicted"] == 1

    def test_readmission_after_eviction(self):
        registry = SessionRegistry(max_sessions=1)
        first = registry.session_for(*_spec("a"))
        answer = first.check()
        registry.session_for(*_spec("b"))
        assert registry.get(first.fingerprint) is None
        readmitted = registry.session_for(*_spec("a"))
        assert readmitted is not first
        assert readmitted.fingerprint == first.fingerprint
        assert readmitted.check() == answer

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


def test_effective_parallelism_is_positive():
    assert effective_parallelism() >= 1
