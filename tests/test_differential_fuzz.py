"""Differential fuzzing of the four solver configurations.

Random DTD/constraint instances from :mod:`repro.workloads.generators`
are decided by every solver configuration the checkers can run:

* ``exact-warm``   — certified revised simplex, parent-basis warm starts,
  incremental condsys (the new hot path of the exact backend);
* ``exact-cold``   — same simplex, cold refactorization at every
  branch-and-bound node (the reference the warm path must match);
* ``highs-inc``    — HiGHS float solves on the assembled system with
  exact re-verification (the default production path);
* ``legacy-reb``   — from-scratch rebuild per support node (PR-1's
  reference path).

Every instance must get the *same* sat/unsat verdict from all four, and
each "consistent" answer is backed by a synthesized witness re-verified
against the DTD and constraints (``verify_witness=True`` raises on any
invalid tree), so a divergence anywhere in encoder, patch plumbing or
simplex shows up as a hard failure naming the seed.

``tests/data/differential_corpus.json`` is the regression corpus: seeds
that previously exposed interesting behaviour (cut learning, exact
fallbacks, deep support searches) or — should one ever appear — a
verdict divergence.  Corpus entries replay with the exact generator
parameters recorded at capture time, independent of the sweep below.
"""

import json
from pathlib import Path

import pytest

from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.errors import InvalidConstraintError
from repro.ilp.condsys import parallel_sweep_allowed
from repro.workloads.generators import random_dtd, random_unary_constraints

#: The four configurations under differential test.  Witnesses are
#: synthesized and re-verified on one exact and one float path; the
#: other two run verdict-only so 200+ instances fit the tier-1 budget.
CONFIGS = {
    "exact-warm": CheckerConfig(
        want_witness=True, verify_witness=True, backend="exact", exact_warm=True
    ),
    "exact-cold": CheckerConfig(
        want_witness=False, backend="exact", exact_warm=False
    ),
    "highs-inc": CheckerConfig(
        want_witness=True, verify_witness=True, backend="scipy", incremental=True
    ),
    "legacy-reb": CheckerConfig(
        want_witness=False, backend="scipy", incremental=False
    ),
}

CORPUS_PATH = Path(__file__).parent / "data" / "differential_corpus.json"

#: 200 seeded instances, chunked for readable failure granularity.
NUM_SEEDS = 200
CHUNK = 25


def _instance(seed: int, num_types: int | None = None, **params):
    """The seeded instance family of the sweep (shared with the corpus)."""
    dtd = random_dtd(seed, num_types=num_types or (3 + seed % 3))
    sigma = random_unary_constraints(
        seed * 31 + 7,
        dtd,
        num_keys=params.get("num_keys", seed % 3),
        num_fks=params.get("num_fks", (seed + 1) % 3),
        num_neg_keys=params.get("num_neg_keys", seed % 2),
        num_neg_inclusions=params.get("num_neg_inclusions", (seed + 1) % 2),
    )
    return dtd, sigma


def _cross_check(seed: int, dtd, sigma) -> str:
    """All four verdicts must agree; returns the agreed verdict."""
    verdicts = {}
    for name, config in CONFIGS.items():
        result = check_consistency(dtd, sigma, config)
        verdicts[name] = result.consistent
    if len(set(verdicts.values())) != 1:
        raise AssertionError(
            f"seed {seed}: solver configurations diverge: {verdicts} "
            f"(record this seed in {CORPUS_PATH.name})"
        )
    return "sat" if next(iter(verdicts.values())) else "unsat"


@pytest.mark.parametrize("start", range(0, NUM_SEEDS, CHUNK))
def test_differential_sweep(start):
    """Seeds ``[start, start+CHUNK)``: identical verdicts on all four
    configurations, witnesses verified where synthesized."""
    checked = 0
    for seed in range(start, start + CHUNK):
        dtd, sigma = _instance(seed)
        try:
            _cross_check(seed, dtd, sigma)
        except InvalidConstraintError:
            # The random draw produced a constraint outside the unary
            # class for this DTD; the specification is rejected uniformly
            # before any solver runs, so there is nothing to compare.
            continue
        checked += 1
    assert checked > 0


def test_corpus_replays_clean():
    """The regression corpus: previously-interesting seeds, pinned with
    their exact generator parameters and expected verdicts."""
    corpus = json.loads(CORPUS_PATH.read_text())
    assert corpus["entries"], "corpus must never be empty"
    for entry in corpus["entries"]:
        dtd, sigma = _instance(
            entry["seed"],
            num_types=entry["num_types"],
            num_keys=entry["num_keys"],
            num_fks=entry["num_fks"],
            num_neg_keys=entry["num_neg_keys"],
            num_neg_inclusions=entry["num_neg_inclusions"],
        )
        verdict = _cross_check(entry["seed"], dtd, sigma)
        assert verdict == entry["verdict"], (
            f"corpus seed {entry['seed']} ({entry['note']}): expected "
            f"{entry['verdict']}, got {verdict}"
        )


def test_configs_cover_the_advertised_matrix():
    """The harness really drives warm/cold x incremental/rebuild."""
    assert CONFIGS["exact-warm"].backend == "exact"
    assert CONFIGS["exact-warm"].exact_warm
    assert CONFIGS["exact-cold"].backend == "exact"
    assert not CONFIGS["exact-cold"].exact_warm
    assert CONFIGS["highs-inc"].incremental
    assert not CONFIGS["legacy-reb"].incremental


# ---------------------------------------------------------------------------
# Parallel executor sweep (DESIGN.md section 7): jobs ∈ {1, 2, 4}
# ---------------------------------------------------------------------------

#: Worker counts under differential test — the parallel path must return
#: the sequential verdict for every one of them.  Counts that are pure
#: oversubscription for this container's cores are dropped by the shared
#: guard (the same ``effective_parallelism`` arithmetic the benchmark
#: timing gates in ``benchmarks/conftest.py`` use, so local and CI runs
#: skip identically; ``jobs=2`` always stays for pool-engagement
#: coverage).
JOBS_SWEEP = tuple(
    jobs for jobs in (1, 2, 4) if parallel_sweep_allowed(jobs)
)


def _branchy_cases():
    """Instances whose support search genuinely branches (the certified
    pipeline with LP pruning off), so the frontier fan-out really runs."""
    from repro.constraints.parser import parse_constraints
    from repro.workloads.generators import wide_flat_dtd

    cases = []
    for active in (3, 4):
        chain = [f"t{i}.x <= t{(i + 1) % active}.x" for i in range(active)]
        cases.append(
            (
                wide_flat_dtd(active + 2),
                parse_constraints("\n".join(chain + ["t0.x !<= t1.x"])),
            )
        )
    return cases


def test_jobs_sweep_verdicts_match_sequential():
    """Identical verdicts at jobs ∈ {1, 2, 4}, on branchy instances (where
    workers really spawn) and on a slice of the random fuzz family (mostly
    decided pre-branching — the degenerate path must also agree)."""
    from repro.ilp.condsys import WorkerPool

    cases = _branchy_cases()
    for seed in (1, 5, 9, 14):
        cases.append(_instance(seed))
    engaged = 0
    for dtd, sigma in cases:
        verdicts = {}
        for jobs in JOBS_SWEEP:
            config = CheckerConfig(
                want_witness=False, backend="exact", lp_prune=False, jobs=jobs
            )
            try:
                result = check_consistency(dtd, sigma, config)
            except InvalidConstraintError:
                verdicts = {}
                break
            verdicts[jobs] = result.consistent
            if jobs > 1 and result.stats.get("workers_spawned", 0):
                engaged += 1
        assert len(set(verdicts.values())) <= 1, (
            f"jobs sweep diverged: {verdicts}"
        )
    if WorkerPool.available():
        assert engaged > 0, "no instance ever engaged the worker pool"


def test_jobs_sweep_witnesses_stay_verified():
    """Feasible parallel answers may pick a different branch's witness —
    it must still synthesize and re-verify like any sequential one."""
    verifying = CheckerConfig(
        want_witness=True, verify_witness=True, lp_prune=False, jobs=4
    )
    checked = 0
    for seed in (2, 4, 8):
        dtd, sigma = _instance(seed)
        try:
            result = check_consistency(dtd, sigma, verifying)
        except InvalidConstraintError:
            continue
        if result.consistent:
            assert result.witness is not None  # verified inside the checker
            checked += 1
    assert checked > 0


def test_implies_all_jobs_sweep_verdicts_and_stats_identical():
    """Batch implication under the worker pool: every worker runs the
    identical sequential per-query path, so not only the verdicts but the
    complete per-query stats dicts must match ``jobs=1`` exactly."""
    from repro.checkers.implication import implies_all
    from repro.constraints.parser import parse_constraint
    from repro.workloads.generators import star_schema_family

    dtd, sigma = star_schema_family(3, consistent=True)
    phis = [parse_constraint(f"dim{i}.id -> dim{i}") for i in range(3)]
    phis += [parse_constraint(f"fact.ref{i} <= dim{i}.id") for i in range(3)]
    baseline = implies_all(
        dtd, sigma, phis, CheckerConfig(want_witness=False, jobs=1)
    )
    for jobs in JOBS_SWEEP[1:]:
        parallel = implies_all(
            dtd, sigma, phis, CheckerConfig(want_witness=False, jobs=jobs)
        )
        assert [r.implied for r in parallel] == [r.implied for r in baseline]
        for query, (seq, par) in enumerate(zip(baseline, parallel)):
            assert par.stats == seq.stats, (
                f"jobs={jobs} query={query}: stats diverged from sequential"
            )


# ---------------------------------------------------------------------------
# ``--jobs auto``: the adaptive level never changes an answer (ISSUE 8)
# ---------------------------------------------------------------------------


def test_auto_jobs_sessions_match_jobs1_and_stay_clamped():
    """The ``--jobs auto`` property: adaptive sessions return the jobs=1
    verdicts across branchy and random fuzz instances, and the
    controller's level stays inside ``[1, effective_parallelism()]``
    throughout.  Levels resolve to concrete ints per request, so while
    the controller sits at 1 the response is *byte-identical* to the
    fixed jobs=1 session (same cache key, same stats block); above 1 the
    jobs-sweep contract applies (same verdict and method — a worker may
    surface a different branch's witness)."""
    from repro.ilp.condsys import effective_parallelism
    from repro.service.metrics import AdaptiveJobsController
    from repro.service.registry import SessionRegistry

    base = CheckerConfig(
        want_witness=False, backend="exact", lp_prune=False, jobs=1
    )
    baseline = SessionRegistry(config=base)
    adaptive = SessionRegistry(config=base, auto_jobs=True)
    ceiling = max(1, effective_parallelism())
    cases = _branchy_cases() + [_instance(seed) for seed in (1, 3, 5, 9, 14)]
    compared = 0
    for dtd, sigma in cases:
        try:
            ref = baseline.session_for(dtd, sigma)
        except InvalidConstraintError:
            # Out-of-class draws are rejected uniformly on both sides,
            # before any controller is consulted.
            with pytest.raises(InvalidConstraintError):
                adaptive.session_for(dtd, sigma)
            continue
        session = adaptive.session_for(dtd, sigma)
        # A zero target marks every solve slow, so the controller climbs
        # as far as this container's CPU ceiling allows during the sweep.
        session._jobs_controller = AdaptiveJobsController(target_latency=0.0)
        for _ in range(3):
            level = session.jobs_controller.current()
            assert 1 <= level <= ceiling
            expected = ref.check()
            got = session.check()
            if level == 1:
                assert json.dumps(got, sort_keys=True) == json.dumps(
                    expected, sort_keys=True
                )
            else:
                assert got["consistent"] == expected["consistent"]
                assert got["method"] == expected["method"]
            compared += 1
        assert 1 <= session.jobs_controller.current() <= ceiling
    assert compared > 0


def test_auto_jobs_controller_moves_and_keeps_the_verdict():
    """Movement, independent of this container's CPU count: a two-level
    ceiling with a hair-trigger target must actually grow the controller
    after the first solve, and the jobs=2 re-solve (a distinct cache
    key) still returns the jobs=1 verdict — the jobs-sweep contract,
    reached adaptively instead of by a fixed flag."""
    from repro.service.metrics import AdaptiveJobsController
    from repro.service.registry import SessionRegistry

    base = CheckerConfig(
        want_witness=False, backend="exact", lp_prune=False, jobs=1
    )
    dtd, sigma = _branchy_cases()[0]
    registry = SessionRegistry(config=base, auto_jobs=True)
    session = registry.session_for(dtd, sigma)
    session._jobs_controller = AdaptiveJobsController(
        target_latency=0.0, ceiling=2
    )
    first = session.check()
    assert session.jobs_controller.grown >= 1
    assert session.jobs_controller.current() == 2
    second = session.check()
    assert session.stats.cache_hits == 0, "each level is a distinct solve"
    baseline = check_consistency(dtd, sigma, base)
    assert first["consistent"] == baseline.consistent
    assert second["consistent"] == baseline.consistent
    assert second["method"] == first["method"]
