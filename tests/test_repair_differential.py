"""Differential testing of the minimal-repair engine.

The toggled repair search (one assembled ``Psi`` with per-site shadow
rows, probed by row-bound flips; DESIGN.md section 12) must agree with
the rebuild oracle — ``toggled=False``, which applies every candidate
edit set structurally and re-runs the full checker — and, on small
universes, with brute-force subset enumeration (the minimality oracle).
Every repair the engine reports is re-applied here and re-checked
against the consistency checker, the ultimate ground truth.

The service surface rides along: the ``repair`` wire op must be
byte-identical through one server and through a fleet, and the
deprecated MUS entry points must keep answering (with a warning) while
they delegate to :func:`repro.analysis.diagnostics.mus`.
"""

import asyncio
import itertools
import json

import pytest

from repro.analysis.repair import (
    DeleteConstraint,
    RepairStats,
    _candidate_universe,
    apply_repair,
    minimal_repair,
)
from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.dtd.serializer import dtd_to_string
from repro.errors import ComplexityLimitError, InvalidConstraintError
from repro.workloads.examples import teachers_dtd_d1
from repro.workloads.generators import random_dtd, random_unary_constraints

#: The big consistency-restoration sweep (engine vs the checker itself).
NUM_SEEDS = 200
SWEEP_CHUNK = 50
#: The rebuild-oracle sweep (each seed pays a rebuild-per-probe search).
ORACLE_SEEDS = 45
ORACLE_CHUNK = 15

SIGMA1 = (
    "teacher.name -> teacher\n"
    "subject.taught_by -> subject\n"
    "subject.taught_by => teacher.name"
)

_CONFIG = CheckerConfig(want_witness=False)


def _instance(seed: int):
    """Seeded family biased toward inconsistency (keys + FKs on a DTD
    with required children force the Section-1 counting conflicts)."""
    dtd = random_dtd(seed, num_types=4)
    sigma = random_unary_constraints(
        seed * 37 + 11,
        dtd,
        num_keys=2,
        num_fks=2,
        num_neg_keys=1,
        num_neg_inclusions=seed % 2,
    )
    return dtd, sigma


def _canonical_actions(repair) -> list[str]:
    return sorted(action.describe() for action in repair.actions)


def _spec_consistent(dtd, sigma) -> bool:
    return check_consistency(dtd, sigma, _CONFIG).consistent


@pytest.mark.parametrize("start", range(0, NUM_SEEDS, SWEEP_CHUNK))
def test_repair_restores_consistency_seeded_sweep(start):
    """Every repair the toggled engine reports is applied here and
    re-checked consistent; unit weights mean cost == |actions|; one
    assembly per search regardless of probe count."""
    checked = repaired = 0
    for seed in range(start, start + SWEEP_CHUNK):
        dtd, sigma = _instance(seed)
        stats = RepairStats()
        try:
            repair = minimal_repair(dtd, sigma, stats=stats)
        except (InvalidConstraintError, ComplexityLimitError):
            continue  # outside the decidable/capped fragment: skip uniformly
        checked += 1
        if repair.consistent_before:
            assert not repair.actions
            assert _spec_consistent(dtd, sigma), f"seed {seed}"
            continue
        assert repair.found, f"seed {seed}: deleting all of Sigma always repairs"
        repaired += 1
        assert repair.verified, f"seed {seed}"
        assert repair.cost == len(repair.actions), f"seed {seed}"
        new_dtd, new_sigma = apply_repair(dtd, sigma, repair.actions)
        assert dtd_to_string(new_dtd) == dtd_to_string(repair.dtd), f"seed {seed}"
        assert _spec_consistent(new_dtd, new_sigma), (
            f"seed {seed}: applied repair is not consistent"
        )
        if stats.method == "toggled":
            assert stats.assemblies == 1, (
                f"seed {seed}: {stats.assemblies} assemblies for "
                f"{stats.probes} probes"
            )
    assert checked > 0 and repaired > 0


@pytest.mark.parametrize("start", range(0, ORACLE_SEEDS, ORACLE_CHUNK))
def test_repair_matches_rebuild_oracle(start):
    """Toggled search == rebuild search on (found, cost, actions): both
    drive the same deterministic hitting-set loop, so the shadow-row
    probes must agree with apply-and-recheck on every candidate set."""
    checked = 0
    for seed in range(start, start + ORACLE_CHUNK):
        dtd, sigma = _instance(seed)
        try:
            toggled = minimal_repair(dtd, sigma)
            rebuild = minimal_repair(dtd, sigma, toggled=False)
        except (InvalidConstraintError, ComplexityLimitError):
            continue
        checked += 1
        assert toggled.consistent_before == rebuild.consistent_before, f"seed {seed}"
        assert toggled.found == rebuild.found, f"seed {seed}"
        assert toggled.cost == rebuild.cost, f"seed {seed}"
        assert _canonical_actions(toggled) == _canonical_actions(rebuild), (
            f"seed {seed}"
        )
    assert checked > 0


def test_repair_minimality_brute_force():
    """The minimality oracle: on small candidate universes, no strictly
    smaller edit set restores consistency (enumerated exhaustively)."""
    verified = 0
    for seed in range(24):
        dtd, sigma = _instance(seed)
        try:
            repair = minimal_repair(dtd, sigma)
        except (InvalidConstraintError, ComplexityLimitError):
            continue
        if repair.consistent_before or not repair.found:
            continue
        universe = _candidate_universe(dtd, list(sigma))
        if len(universe) > 16:
            continue  # keep the enumeration cheap
        for size in range(repair.cost):
            for combo in itertools.combinations(universe, size):
                cand_dtd, cand_sigma = apply_repair(
                    dtd, sigma, [c.action for c in combo]
                )
                assert not _spec_consistent(cand_dtd, cand_sigma), (
                    f"seed {seed}: cheaper repair "
                    f"{[c.action.describe() for c in combo]} beats "
                    f"cost {repair.cost}"
                )
        verified += 1
    assert verified > 0


def test_repair_jobs_sweep_identical_answers():
    """The repaired specification is byte-identical at every worker
    count (stats may differ: workers pay their own assemblies)."""
    dtd, sigma = teachers_dtd_d1(), parse_constraints(SIGMA1)
    baseline = minimal_repair(dtd, sigma).as_dict()
    baseline.pop("stats")
    for jobs in (2, 4):
        config = CheckerConfig(want_witness=False, jobs=jobs)
        payload = minimal_repair(dtd, sigma, config).as_dict()
        payload.pop("stats")
        assert payload == baseline, f"jobs={jobs}"


def test_repair_weights_steer_the_search():
    """Unit weights delete the cheapest constraint; pricing deletions out
    forces the engine into DTD edits (the paper's Section-1 story: keep
    the constraints, relax 'exactly two subjects')."""
    dtd, sigma = teachers_dtd_d1(), parse_constraints(SIGMA1)
    default = minimal_repair(dtd, sigma)
    assert default.found and default.cost == 1
    assert isinstance(default.actions[0], DeleteConstraint)

    weighted = minimal_repair(dtd, sigma, weights={"delete": 5})
    assert weighted.found and weighted.verified
    assert not any(
        isinstance(action, DeleteConstraint) for action in weighted.actions
    )
    new_dtd, new_sigma = apply_repair(dtd, sigma, weighted.actions)
    assert _spec_consistent(new_dtd, new_sigma)
    assert len(new_sigma) == len(list(sigma))  # every constraint survives

    with pytest.raises(ValueError, match="positive integers"):
        minimal_repair(dtd, sigma, weights={"delete": 0})


def test_repair_consistent_input_short_circuits():
    dtd = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]})
    repair = minimal_repair(dtd, parse_constraints("a.x -> a"))
    assert repair.consistent_before and not repair.actions
    assert repair.summary() == (
        "specification is already consistent; nothing to repair"
    )


# ---------------------------------------------------------------------------
# The repair wire op: byte-identical through serve and fleet
# ---------------------------------------------------------------------------


def _line_exchange(address, requests) -> list:
    async def run():
        reader, writer = await asyncio.open_connection(*address)
        lines = []
        for request in requests:
            writer.write((json.dumps(request) + "\n").encode("utf-8"))
            await writer.drain()
            lines.append(await reader.readline())
        writer.close()
        return lines

    return asyncio.run(run())


def _repair_requests() -> list:
    dtd_text = dtd_to_string(teachers_dtd_d1())
    spec = {"dtd": dtd_text, "constraints": SIGMA1}
    consistent = {"dtd": dtd_text, "constraints": "teacher.name -> teacher"}
    return [
        {"id": 1, "op": "repair", **spec},
        {"id": 2, "op": "repair", **spec, "weights": {"delete": 5}},
        {"id": 3, "op": "repair", **consistent},
        {"id": 4, "op": "repair", **spec, "weights": "not-an-object"},
        {"id": 5, "op": "repair", **spec, "weights": {"delete": 0}},
        {"id": 6, "op": "repair", **spec},  # response-cache replay
    ]


def test_repair_wire_op_byte_identical_serve_and_fleet():
    from repro.service.fleet import FleetRouter
    from repro.service.registry import SessionRegistry
    from repro.service.server import CheckingServer

    requests = _repair_requests()
    reference = CheckingServer(SessionRegistry())
    reference.start_background()
    backends, specs = [], []
    try:
        for _ in range(2):
            backend = CheckingServer(SessionRegistry())
            host, port = backend.start_background()
            backends.append(backend)
            specs.append(f"{host}:{port}")
        router = FleetRouter(specs)
        address = router.start_background()
        try:
            fleet_bytes = _line_exchange(address, requests)
            single_bytes = _line_exchange(reference.address, requests)
        finally:
            router.close()
        for request, ours, theirs in zip(requests, fleet_bytes, single_bytes):
            assert ours == theirs, request
        payloads = [json.loads(raw) for raw in single_bytes]
        assert payloads[0]["ok"] and payloads[0]["result"]["found"]
        assert payloads[0]["result"]["verified"]
        assert any(
            action["kind"] == "delete"
            for action in payloads[0]["result"]["actions"]
        )
        assert not any(
            action["kind"] == "delete"
            for action in payloads[1]["result"]["actions"]
        )
        assert payloads[2]["result"]["consistent_before"]
        assert not payloads[3]["ok"]
        assert "weights" in payloads[3]["error"]["message"]
        assert not payloads[4]["ok"]  # ValueError -> structured error
        assert payloads[5] == payloads[0] or (
            payloads[5]["result"] == payloads[0]["result"]
        )
    finally:
        for backend in backends:
            backend.close()
        reference.close()


# ---------------------------------------------------------------------------
# Deprecated MUS entry points: warn, then delegate to mus()
# ---------------------------------------------------------------------------


def test_deprecated_mus_names_warn_and_delegate():
    from repro.analysis.diagnostics import (
        minimal_inconsistent_subset,
        minimal_unsat_core,
        mus,
    )

    dtd, sigma = teachers_dtd_d1(), parse_constraints(SIGMA1)
    expected_qx = sorted(str(phi) for phi in mus(dtd, sigma))
    expected_del = sorted(
        str(phi) for phi in mus(dtd, sigma, method="deletion")
    )
    with pytest.warns(DeprecationWarning, match="mus"):
        legacy_qx = minimal_unsat_core(dtd, sigma)
    with pytest.warns(DeprecationWarning, match="mus"):
        legacy_del = minimal_inconsistent_subset(dtd, sigma)
    assert sorted(str(phi) for phi in legacy_qx) == expected_qx
    assert sorted(str(phi) for phi in legacy_del) == expected_del
