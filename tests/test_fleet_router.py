"""Property tests for the fleet's consistent-hash ring.

The two contracts DESIGN.md section 11 rests on:

* **balance** — with virtual replicas, no backend owns more than a
  pinned factor above its fair share of a large key population, for
  every fleet size 1..16;
* **minimal movement** — a join only pulls keys *onto* the joined
  backend; a leave only pushes keys *off* the departed backend.  No
  bystander segment remaps, so fleet membership churn cannot invalidate
  unrelated backends' session residency.

Determinism rides along: ownership is a pure function of (backends,
replicas, key), so two routers — or one router before and after a
restart — route identically.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.service.router import DEFAULT_REPLICAS, HashRing

#: A key population large enough for the balance bound to be meaningful
#: and cheap enough to hash in milliseconds.
KEYS = [f"spec-fingerprint-{i:05d}" for i in range(4096)]


def _backends(count: int) -> list[str]:
    return [f"127.0.0.1:{7800 + i}" for i in range(count)]


# -- balance ---------------------------------------------------------------


@pytest.mark.parametrize("count", list(range(1, 17)))
def test_load_balance_within_pinned_bound(count):
    """No backend owns more than 1.6x its fair share (1..16 backends).

    The bound is loose enough to be stable for a deterministic hash
    (the assignment never changes between runs) and tight enough that a
    broken ring — e.g. replicas collapsing onto one arc — fails it
    immediately.
    """
    ring = HashRing(_backends(count))
    loads: dict[str, int] = {}
    for key in KEYS:
        owner = ring.owner(key)
        loads[owner] = loads.get(owner, 0) + 1
    assert sum(loads.values()) == len(KEYS)
    assert set(loads) <= set(_backends(count))
    fair = len(KEYS) / count
    assert max(loads.values()) <= 1.6 * fair, loads
    if count > 1:
        assert len(loads) == count, "some backend owns nothing"


def test_ownership_is_deterministic_across_instances():
    first = HashRing(_backends(5))
    second = HashRing(list(reversed(_backends(5))))  # insertion order differs
    assert [first.owner(key) for key in KEYS] == [
        second.owner(key) for key in KEYS
    ]


# -- minimal movement ------------------------------------------------------


@pytest.mark.parametrize("count", [1, 2, 3, 7, 15])
def test_join_moves_keys_only_to_the_joined_backend(count):
    ring = HashRing(_backends(count))
    before = {key: ring.owner(key) for key in KEYS}
    joined = f"127.0.0.1:{9000 + count}"
    ring.add(joined)
    moved = 0
    for key in KEYS:
        after = ring.owner(key)
        if after != before[key]:
            assert after == joined, (key, before[key], after)
            moved += 1
    # The joined backend takes roughly one fair share, never the bulk.
    assert moved <= 1.6 * len(KEYS) / (count + 1)
    assert moved > 0


@pytest.mark.parametrize("count", [2, 3, 8, 16])
def test_leave_moves_keys_only_off_the_departed_backend(count):
    ring = HashRing(_backends(count))
    before = {key: ring.owner(key) for key in KEYS}
    departed = _backends(count)[count // 2]
    ring.remove(departed)
    for key in KEYS:
        after = ring.owner(key)
        if before[key] == departed:
            assert after != departed
        else:
            assert after == before[key], (key, before[key], after)


def test_join_then_leave_round_trips_exactly():
    ring = HashRing(_backends(4))
    before = {key: ring.owner(key) for key in KEYS}
    ring.add("127.0.0.1:9999")
    ring.remove("127.0.0.1:9999")
    assert {key: ring.owner(key) for key in KEYS} == before


# -- edges -----------------------------------------------------------------


def test_empty_ring_owns_nothing_and_membership_api():
    ring = HashRing()
    assert ring.owner("anything") is None
    assert len(ring) == 0
    ring.add("a:1")
    assert "a:1" in ring and len(ring) == 1
    ring.add("a:1")  # idempotent
    assert len(ring) == 1
    ring.remove("b:2")  # absent: a no-op
    assert ring.backends() == ["a:1"]
    ring.remove("a:1")
    assert ring.owner("anything") is None


def test_replicas_validation_and_default():
    with pytest.raises(ReproError):
        HashRing(replicas=0)
    assert DEFAULT_REPLICAS >= 64
