"""Stress tests for skeleton assembly: deep recursion and Alt chains."""

import pytest

from repro.constraints.parser import parse_constraints
from repro.checkers.consistency import check_consistency
from repro.dtd.model import DTD
from repro.dtd.simplify import simplify_dtd
from repro.encoding.dtd_system import encode_dtd, ext_var
from repro.ilp.scipy_backend import solve_milp
from repro.witness.skeleton import assemble_skeleton
from repro.xmltree.transform import splice_types
from repro.xmltree.validate import conforms


def _contract(tree, simple):
    """Remove generated types so the tree speaks the original DTD."""
    return splice_types(tree, lambda label: not simple.is_original(label))


class TestLargeSkeletons:
    @pytest.mark.parametrize("count", [10, 100, 500])
    def test_wide_star(self, count):
        """Many siblings under one star: linear assembly."""
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"})
        simple = simplify_dtd(d)
        system = encode_dtd(simple).system.copy()
        system.add_ge({ext_var("a"): 1}, count)
        solution = solve_milp(system)
        assert solution.feasible
        tree = assemble_skeleton(simple, solution.values)
        assert len(tree.ext("a")) >= count

    @pytest.mark.parametrize("depth", [10, 60])
    def test_deep_recursion(self, depth):
        """A recursive chain a -> a?: depth equals the requested count."""
        d = DTD.build("r", {"r": "(a)", "a": "(a?)"})
        simple = simplify_dtd(d)
        system = encode_dtd(simple).system.copy()
        system.add_ge({ext_var("a"): 1}, depth)
        solution = solve_milp(system)
        assert solution.feasible
        tree = _contract(assemble_skeleton(simple, solution.values), simple)
        assert len(tree.ext("a")) >= depth
        assert conforms(tree, d)

    def test_alt_chain_with_interleaved_recursion(self):
        """Alternating choice types feeding each other — the shape that
        punishes bad Alt-branch ordering."""
        d = DTD.build(
            "r",
            {
                "r": "(a)",
                "a": "(b | c)",
                "b": "(a?)",
                "c": "(a?)",
            },
        )
        simple = simplify_dtd(d)
        system = encode_dtd(simple).system.copy()
        system.add_ge({ext_var("a"): 1}, 12)
        solution = solve_milp(system)
        assert solution.feasible
        tree = _contract(assemble_skeleton(simple, solution.values), simple)
        assert conforms(tree, d)
        assert len(tree.ext("a")) >= 12


class TestEndToEndLargeWitnesses:
    def test_negkey_forcing_large_extent(self):
        """Constraints demanding many elements flow through the pipeline."""
        d = DTD.build(
            "r", {"r": "(item*)", "item": "EMPTY"}, attrs={"item": ["sku", "lot"]}
        )
        # sku keyed, lot anti-keyed: at least two items with a lot collision
        # while skus stay unique.
        sigma = parse_constraints("item.sku -> item\nitem.lot !-> item")
        result = check_consistency(d, sigma)
        assert result.consistent
        items = result.witness.ext("item")
        skus = [node.attrs["sku"] for node in items]
        lots = [node.attrs["lot"] for node in items]
        assert len(set(skus)) == len(items)
        assert len(set(lots)) < len(items)

    def test_mutual_fk_forces_equal_extents(self):
        d = DTD.build(
            "r", {"r": "(a*, b, b)", "a": "EMPTY", "b": "EMPTY"},
            attrs={"a": ["x"], "b": ["y"]},
        )
        sigma = parse_constraints(
            "a.x -> a\nb.y -> b\na.x => b.y\nb.y => a.x"
        )
        result = check_consistency(d, sigma)
        assert result.consistent
        assert len(result.witness.ext("a")) == 2  # pinned by |ext(b)| = 2
