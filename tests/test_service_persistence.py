"""Restart recovery: snapshots restore byte-identical service state.

The differential contract of DESIGN.md section 9: fill a session through
a server configured with a state file, stop the server (which snapshots
atomically), start a *fresh* server over a *fresh* registry from the
same file, and replay the same requests — every response must be
byte-identical to the pre-restart one, served from the restored cache
without re-solving.  A corrupted, truncated, version-skewed, or missing
snapshot must restore nothing and cold-start cleanly — restart safety
can never depend on snapshot integrity.
"""

import asyncio
import json
import os
import time

from repro.dtd.serializer import dtd_to_string
from repro.service.persist import (
    SNAPSHOT_VERSION,
    load_snapshot,
    save_snapshot,
)
from repro.service.registry import SessionRegistry
from repro.service.server import CheckingServer
from repro.workloads.examples import figure1_tree, teachers_dtd_d1
from repro.workloads.generators import wide_flat_dtd
from repro.xmltree.serialize import tree_to_string

KEYS = "teacher.name -> teacher\nsubject.taught_by -> subject"
CHAIN = "t0.x <= t1.x\nt1.x <= t2.x"


def _request_suite():
    """Requests covering every cacheable op, with deterministic ids."""
    d1_text = dtd_to_string(teachers_dtd_d1())
    wide_text = dtd_to_string(wide_flat_dtd(4))
    doc = tree_to_string(figure1_tree())
    d1 = {"dtd": d1_text, "constraints": KEYS}
    wide = {"dtd": wide_text, "constraints": CHAIN}
    return [
        {"id": "check-d1", "op": "check", **d1},
        {"id": "validate-d1", "op": "validate", **d1, "document": doc},
        {"id": "diagnose-d1", "op": "diagnose", **d1},
        {"id": "check-wide", "op": "check", **wide},
        {"id": "imp-1", "op": "implies", **wide, "phi": "t0.x <= t2.x"},
        {"id": "imp-2", "op": "implies", **wide, "phi": "t2.x <= t0.x"},
    ]


async def _roundtrip(host, port, requests):
    reader, writer = await asyncio.open_connection(host, port)
    for request in requests:
        writer.write((json.dumps(request) + "\n").encode())
    await writer.drain()
    responses = {}
    for _ in requests:
        line = await reader.readline()
        assert line, "server closed mid-burst"
        response = json.loads(line)
        responses[response["id"]] = response
    writer.close()
    return responses


def _serve_and_collect(state_file, requests, shutdown=True):
    server = CheckingServer(SessionRegistry(), state_file=state_file)
    host, port = server.start_background()
    try:
        burst = list(requests)
        if shutdown:
            burst.append({"id": "bye", "op": "shutdown"})
        responses = asyncio.run(_roundtrip(host, port, burst))
        responses.pop("bye", None)
        if shutdown:
            # A shutdown op drains deterministically and stops the loop
            # (after snapshotting); the server thread must exit on its
            # own, no grace timers involved.
            server._thread.join(timeout=30)
            assert not server._thread.is_alive()
        stats = server.stats_payload()
        return responses, stats
    finally:
        server.close()


def test_restart_recovery_is_byte_identical(tmp_path):
    state = str(tmp_path / "sessions.json")
    requests = _request_suite()
    before, stats_before = _serve_and_collect(state, requests)
    assert stats_before["server"]["snapshots_saved"] >= 1
    assert os.path.exists(state)

    after, stats_after = _serve_and_collect(state, requests)
    assert stats_after["server"]["sessions_restored"] == 2
    assert after == before, "restart changed a response byte"
    # Every replayed request hit the restored response cache: the new
    # process never re-solved anything.
    hits = sum(
        entry["cache_hits"] for entry in stats_after["sessions"].values()
    )
    assert hits == len(requests)


def test_corrupt_snapshot_cold_starts_cleanly(tmp_path):
    state = str(tmp_path / "sessions.json")
    requests = _request_suite()
    before, _ = _serve_and_collect(state, requests)
    with open(state, "r+", encoding="utf-8") as handle:
        handle.seek(0)
        handle.write("{garbage")
    after, stats = _serve_and_collect(state, requests)
    assert stats["server"]["sessions_restored"] == 0
    assert after == before, (
        "a cold start must still answer identically (just slower)"
    )


def test_checksum_mismatch_restores_nothing(tmp_path):
    state = str(tmp_path / "sessions.json")
    _serve_and_collect(state, _request_suite())
    envelope = json.loads(open(state, encoding="utf-8").read())
    envelope["payload"]["mode"] = "warm"  # tampered payload, stale checksum
    with open(state, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)
    registry = SessionRegistry()
    assert load_snapshot(registry, state) == 0


def test_version_skew_restores_nothing(tmp_path):
    state = str(tmp_path / "sessions.json")
    _serve_and_collect(state, _request_suite())
    envelope = json.loads(open(state, encoding="utf-8").read())
    envelope["version"] = SNAPSHOT_VERSION + 1
    with open(state, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)
    registry = SessionRegistry()
    assert load_snapshot(registry, state) == 0


def test_missing_snapshot_is_a_cold_start(tmp_path):
    state = str(tmp_path / "never-written.json")
    responses, stats = _serve_and_collect(state, _request_suite()[:1],
                                          shutdown=False)
    assert stats["server"]["sessions_restored"] == 0
    assert responses["check-d1"]["ok"] is True


def test_snapshot_round_trip_without_a_server(tmp_path):
    """The persist layer alone: registry out, registry in, same cache."""
    state = str(tmp_path / "direct.json")
    registry = SessionRegistry()
    session = registry.session_for(dtd_to_string(wide_flat_dtd(4)), CHAIN)
    payload = session.implies("t0.x <= t2.x", None)
    config_payload = session.implies(
        "t1.x <= t2.x", {"want_witness": False}
    )
    assert save_snapshot(registry, state) == 1

    restored_registry = SessionRegistry()
    assert load_snapshot(restored_registry, state) == 1
    restored = restored_registry.session_for(
        dtd_to_string(wide_flat_dtd(4)), CHAIN
    )
    assert restored.implies("t0.x <= t2.x", None) == payload
    assert (
        restored.implies("t1.x <= t2.x", {"want_witness": False})
        == config_payload
    )
    stats = restored.service_stats()
    assert stats["cache_hits"] == 2, (
        "restored responses must replay from cache, not re-solve"
    )


def test_autosave_snapshots_while_serving(tmp_path):
    state = str(tmp_path / "autosave.json")
    server = CheckingServer(
        SessionRegistry(), state_file=state, autosave_interval=0.05
    )
    host, port = server.start_background()
    try:
        asyncio.run(_roundtrip(host, port, _request_suite()[:1]))
        deadline = time.monotonic() + 5.0
        while not os.path.exists(state):
            assert time.monotonic() < deadline, "autosave never fired"
            time.sleep(0.02)
        registry = SessionRegistry()
        assert load_snapshot(registry, state) == 1
    finally:
        server.close()
