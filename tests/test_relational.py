"""Relational substrate and Section-3 reduction tests."""

import pytest

from repro.checkers.bounded import bounded_consistency
from repro.constraints.ast import ForeignKey, Key
from repro.relational.constraints import (
    FD,
    ID,
    RelForeignKey,
    RelKey,
    rel_satisfies,
    rel_satisfies_all,
)
from repro.relational.model import Instance, RelationSchema, Schema
from repro.relational.reductions import (
    encode_fd_implication,
    relational_implication_to_xml,
)


@pytest.fixture
def rs():
    return Schema(
        (
            RelationSchema("emp", ("eid", "dept", "boss")),
            RelationSchema("dept", ("did", "head")),
        )
    )


def _instance(rs, emp_rows=(), dept_rows=()):
    inst = Instance(rs)
    for row in emp_rows:
        inst.insert("emp", row)
    for row in dept_rows:
        inst.insert("dept", row)
    return inst


class TestModel:
    def test_duplicate_rows_collapse(self, rs):
        inst = _instance(rs, emp_rows=[
            {"eid": "1", "dept": "cs", "boss": "b"},
            {"eid": "1", "dept": "cs", "boss": "b"},
        ])
        assert len(inst.tuples("emp")) == 1

    def test_missing_attribute_rejected(self, rs):
        with pytest.raises(ValueError, match="missing"):
            _instance(rs, emp_rows=[{"eid": "1"}])

    def test_projection(self, rs):
        inst = _instance(rs, emp_rows=[
            {"eid": "1", "dept": "cs", "boss": "b"},
            {"eid": "2", "dept": "cs", "boss": "c"},
        ])
        assert inst.project("emp", ("dept",)) == {("cs",)}

    def test_duplicate_schema_names_rejected(self):
        with pytest.raises(ValueError):
            Schema((RelationSchema("R", ("a",)), RelationSchema("R", ("b",))))


class TestSatisfaction:
    def test_fd(self, rs):
        inst = _instance(rs, emp_rows=[
            {"eid": "1", "dept": "cs", "boss": "b"},
            {"eid": "1", "dept": "math", "boss": "b"},
        ])
        assert not rel_satisfies(inst, FD("emp", ("eid",), ("dept",)))
        assert rel_satisfies(inst, FD("emp", ("eid",), ("boss",)))

    def test_key_means_whole_tuple(self, rs):
        inst = _instance(rs, emp_rows=[
            {"eid": "1", "dept": "cs", "boss": "b"},
            {"eid": "1", "dept": "math", "boss": "b"},
        ])
        assert not rel_satisfies(inst, RelKey("emp", ("eid",)))
        assert rel_satisfies(inst, RelKey("emp", ("eid", "dept")))

    def test_full_attribute_set_is_always_a_key(self, rs):
        inst = _instance(rs, emp_rows=[
            {"eid": "1", "dept": "cs", "boss": "b"},
            {"eid": "2", "dept": "cs", "boss": "b"},
        ])
        assert rel_satisfies(inst, RelKey("emp", ("eid", "dept", "boss")))

    def test_inclusion_dependency(self, rs):
        inst = _instance(
            rs,
            emp_rows=[{"eid": "1", "dept": "cs", "boss": "b"}],
            dept_rows=[{"did": "cs", "head": "h"}],
        )
        assert rel_satisfies(inst, ID("emp", ("dept",), "dept", ("did",)))
        assert not rel_satisfies(inst, ID("dept", ("head",), "emp", ("boss",)))

    def test_foreign_key_needs_target_key(self, rs):
        inst = _instance(
            rs,
            emp_rows=[{"eid": "1", "dept": "cs", "boss": "b"}],
            dept_rows=[{"did": "cs", "head": "h1"}, {"did": "cs", "head": "h2"}],
        )
        fk = RelForeignKey("emp", ("dept",), "dept", ("did",))
        assert rel_satisfies(inst, fk.inclusion)
        assert not rel_satisfies(inst, fk)

    def test_satisfies_all(self, rs):
        inst = _instance(rs, dept_rows=[{"did": "cs", "head": "h"}])
        assert rel_satisfies_all(
            inst, [RelKey("dept", ("did",)), ID("emp", ("dept",), "dept", ("did",))]
        )


class TestLemma32:
    def test_fd_encoding_shape(self, rs):
        enc = encode_fd_implication(rs, [], FD("emp", ("eid",), ("dept",)))
        assert enc.phi.attrs == ("eid",)
        new_rel = enc.schema.relation(enc.phi.relation)
        # Rnew carries XYZ = Att(emp).
        assert set(new_rel.attributes) == {"eid", "dept", "boss"}
        # ell2, ell3 foreign keys plus ell4 key.
        assert sum(isinstance(c, RelForeignKey) for c in enc.sigma) == 2
        assert sum(isinstance(c, RelKey) for c in enc.sigma) == 1

    def test_id_encoding_shape(self, rs):
        enc = encode_fd_implication(
            rs,
            [ID("emp", ("dept",), "dept", ("did",))],
            FD("emp", ("eid",), ("boss",)),
        )
        names = {rel.name for rel in enc.schema.relations}
        assert any(name.startswith("dept_new") for name in names)
        assert any(name.startswith("emp_new") for name in names)

    def test_rejects_foreign_input(self, rs):
        with pytest.raises(TypeError):
            encode_fd_implication(rs, [RelKey("emp", ("eid",))],
                                  FD("emp", ("eid",), ("dept",)))


class TestTheorem31:
    def _schema(self):
        return Schema((RelationSchema("R", ("x", "y")),))

    def test_dtd_shape(self):
        red = relational_implication_to_xml(
            self._schema(), [], RelKey("R", ("x",))
        )
        dtd = red.dtd
        assert dtd.root == "r"
        assert red.dy_type in dtd.element_types
        assert dtd.attrs(red.dy_type) == frozenset({"x", "y"})
        assert dtd.attrs(red.ex_type) == frozenset({"x"})
        t_r = red.tuple_type["R"]
        assert dtd.attrs(t_r) == frozenset({"x", "y"})

    def test_sigma_contains_witness_gadget(self):
        red = relational_implication_to_xml(
            self._schema(), [], RelKey("R", ("x",))
        )
        keys = [c for c in red.sigma if isinstance(c, Key)]
        fks = [c for c in red.sigma if isinstance(c, ForeignKey)]
        assert any(k.element_type == red.dy_type for k in keys)
        assert any(k.element_type == red.ex_type for k in keys)
        assert len(fks) >= 2

    def test_not_implied_gives_consistent_xml(self):
        # Theta empty: R[x] -> R is NOT implied, so the XML spec must be
        # consistent (a small witness exists).
        red = relational_implication_to_xml(
            self._schema(), [], RelKey("R", ("x",))
        )
        witness = bounded_consistency(red.dtd, red.sigma, max_nodes=10)
        assert witness is not None
        # The witness encodes two R-tuples agreeing on x, differing on y.
        dys = witness.ext(red.dy_type)
        assert len(dys) == 2
        assert dys[0].attrs["x"] == dys[1].attrs["x"]
        assert dys[0].attrs["y"] != dys[1].attrs["y"]

    def test_implied_gives_inconsistent_xml(self):
        # Theta contains R[x] -> R itself: the implication holds trivially,
        # so the XML spec must be inconsistent.
        red = relational_implication_to_xml(
            self._schema(), [RelKey("R", ("x",))], RelKey("R", ("x",))
        )
        assert bounded_consistency(red.dtd, red.sigma, max_nodes=8) is None

    def test_theta_keys_translated_to_tuple_types(self):
        red = relational_implication_to_xml(
            self._schema(), [RelKey("R", ("y",))], RelKey("R", ("x",))
        )
        t_r = red.tuple_type["R"]
        assert Key(t_r, ("y",)) in red.sigma
