"""Tests for the Psi_DN / C_Sigma / set-representation encodings."""

import pytest

from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.dtd.simplify import simplify_dtd
from repro.encoding.cardinality import attr_var
from repro.encoding.combined import build_encoding
from repro.encoding.dtd_system import encode_dtd, ext_var
from repro.encoding.setrep import (
    build_intersection_pattern_matrix,
    build_uv_matrices,
    has_set_representation,
)
from repro.errors import ComplexityLimitError, InvalidConstraintError
from repro.ilp.scipy_backend import solve_milp


class TestPsiD:
    def test_root_pinned_to_one(self, d1):
        psi = encode_dtd(simplify_dtd(d1))
        root_rows = [row for row in psi.system.rows if row.label == "root"]
        assert len(root_rows) == 1
        assert root_rows[0].rhs == 1

    def test_d1_solvable_with_teacher_subject_ratio(self, d1):
        # Any solution must satisfy |ext(subject)| = 2 |ext(teacher)|.
        psi = encode_dtd(simplify_dtd(d1))
        result = solve_milp(psi.system)
        assert result.feasible
        assert (
            result.values[ext_var("subject")]
            == 2 * result.values[ext_var("teacher")]
        )
        assert result.values[ext_var("teacher")] >= 1

    def test_d2_unsolvable(self, d2):
        # db -> foo, foo -> foo: ext(db)=1 forces ext(foo) = ext(foo) + 1.
        psi = encode_dtd(simplify_dtd(d2))
        assert solve_milp(psi.system).infeasible

    def test_edges_cover_occurrences(self, d1):
        psi = encode_dtd(simplify_dtd(d1))
        children = {child for _, _, child in psi.edges}
        assert "teacher" in children
        assert "subject" in children

    def test_self_only_type_gets_impossible_clause(self):
        d = DTD.build("r", {"r": "(a | b)", "a": "(a)", "b": "EMPTY"})
        psi = encode_dtd(simplify_dtd(d))
        impossible = [
            clause for clause in psi.clauses
            if clause.premise == "a" and not clause.alternatives
        ]
        assert impossible  # a -> a forces infinite descent


class TestCSigma:
    def test_key_row_equates_cardinalities(self, d1, sigma1):
        encoding = build_encoding(d1, sigma1)
        labels = [row.label for row in encoding.condsys.base.rows]
        assert "key:teacher.name" in labels
        assert "key:subject.taught_by" in labels
        assert any(label.startswith("ic:") for label in labels)

    def test_attr_bounds_for_all_pairs(self, d1):
        encoding = build_encoding(d1, [])
        labels = {row.label for row in encoding.condsys.base.rows}
        assert "attr-bound:teacher.name" in labels
        assert "attr-bound:subject.taught_by" in labels

    def test_requires_if_present_lists_attrs(self, d1):
        encoding = build_encoding(d1, [])
        assert encoding.condsys.requires_if_present["teacher"] == (
            attr_var("teacher", "name"),
        )

    def test_inclusion_adds_support_clause(self, d1, sigma1):
        encoding = build_encoding(d1, sigma1)
        assert any(
            clause.premise == "subject" and clause.alternatives == {"teacher"}
            for clause in encoding.condsys.clauses
        )

    def test_neg_key_forces_presence_and_strict_row(self):
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]})
        encoding = build_encoding(d, parse_constraints("a.x !-> a"))
        assert "a" in encoding.condsys.forced_true
        neg_rows = [r for r in encoding.condsys.base.rows if "negkey" in r.label]
        assert len(neg_rows) == 1
        assert neg_rows[0].rhs == -1

    def test_multiattr_rejected(self, d3, sigma3):
        with pytest.raises(InvalidConstraintError, match="unary"):
            build_encoding(d3, sigma3)


class TestSetRep:
    def test_block_built_only_with_negated_inclusions(self):
        d = DTD.build("r", {"r": "(a*, b*)", "a": "EMPTY", "b": "EMPTY"},
                      attrs={"a": ["x"], "b": ["y"]})
        without = build_encoding(d, parse_constraints("a.x <= b.y"))
        assert without.setrep is None
        with_neg = build_encoding(d, parse_constraints("a.x !<= b.y"))
        assert with_neg.setrep is not None
        assert with_neg.setrep.pairs == (("a", "x"), ("b", "y"))

    def test_cap_enforced(self):
        attrs = {f"t{i}": ["x"] for i in range(5)}
        content = {"r": "(" + ", ".join(f"t{i}*" for i in range(5)) + ")"}
        content.update({f"t{i}": "EMPTY" for i in range(5)})
        d = DTD.build("r", content, attrs=attrs)
        sigma = parse_constraints(
            "\n".join(f"t{i}.x !<= t{(i + 1) % 5}.x" for i in range(5))
        )
        with pytest.raises(ComplexityLimitError):
            build_encoding(d, sigma, max_setrep_attrs=3)

    def test_self_negated_inclusion_infeasible_row(self):
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]})
        encoding = build_encoding(d, parse_constraints("a.x !<= a.x"))
        assert any(
            "negic-self" in row.label for row in encoding.condsys.base.rows
        )


class TestIntersectionPatterns:
    def test_uv_matrices_of_actual_sets(self):
        sets = [{"p", "q"}, {"q"}, {"r"}]
        u, v = build_uv_matrices(sets)
        assert u[0][0] == 2 and u[1][1] == 1
        assert u[0][1] == 1 and v[0][1] == 1
        assert u[0][2] == 0 and v[0][2] == 2

    def test_real_uv_has_representation(self):
        u, v = build_uv_matrices([{"p", "q"}, {"q", "r"}, set()])
        assert has_set_representation(u, v)

    def test_impossible_uv_rejected(self):
        # |A0| = 1 via u00, but claims 2 elements outside A1 (v01 = 2).
        u = [[1, 0], [0, 1]]
        v = [[0, 2], [1, 0]]
        assert not has_set_representation(u, v)

    def test_w_matrix_shape_and_symmetry(self):
        u, v = build_uv_matrices([{"p"}, {"p", "q"}])
        w = build_intersection_pattern_matrix(u, v, big_k=10)
        assert len(w) == 4 and all(len(row) == 4 for row in w)
        for i in range(4):
            for j in range(4):
                assert w[i][j] == w[j][i]
