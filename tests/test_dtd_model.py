"""Unit tests for the DTD model (Definition 2.1 well-formedness)."""

import pytest

from repro.dtd.model import DTD
from repro.errors import InvalidDTDError


class TestBuild:
    def test_minimal(self):
        d = DTD.build("r", {"r": "EMPTY"})
        assert d.root == "r"
        assert d.element_types == ("r",)
        assert d.attrs("r") == frozenset()

    def test_attrs_recorded(self, d1):
        assert d1.attrs("teacher") == frozenset({"name"})
        assert d1.attrs("subject") == frozenset({"taught_by"})
        assert d1.attrs("teach") == frozenset()

    def test_attribute_pairs_deterministic(self, d3):
        pairs = d3.attribute_pairs()
        assert ("course", "course_no") in pairs
        assert ("enroll", "student_id") in pairs
        assert pairs == sorted(pairs)

    def test_string_content_parsed(self):
        d = DTD.build("r", {"r": "(a, b*)", "a": "EMPTY", "b": "(#PCDATA)"})
        assert str(d.content["r"]) == "a, b*"


class TestValidation:
    def test_root_must_be_declared(self):
        with pytest.raises(InvalidDTDError, match="root"):
            DTD.build("missing", {"r": "EMPTY"})

    def test_undeclared_child_type_rejected(self):
        with pytest.raises(InvalidDTDError, match="undeclared"):
            DTD.build("r", {"r": "(ghost)"})

    def test_root_in_content_model_rejected(self):
        # Definition 2.1 assumes the root never occurs in content models.
        with pytest.raises(InvalidDTDError, match="root"):
            DTD.build("r", {"r": "(a)", "a": "(r)"})

    def test_element_attribute_name_overlap_rejected(self):
        with pytest.raises(InvalidDTDError, match="disjoint"):
            DTD(
                element_types=("r", "x"),
                attributes=("x",),
                content={"r": DTD.build("r", {"r": "EMPTY"}).content["r"],
                         "x": DTD.build("r", {"r": "EMPTY"}).content["r"]},
                attrs_of={},
                root="r",
            )

    def test_attrs_for_undeclared_type_rejected(self):
        with pytest.raises(InvalidDTDError):
            DTD.build("r", {"r": "EMPTY"}, attrs={"ghost": ["a"]})

    def test_undeclared_attribute_rejected(self):
        with pytest.raises(InvalidDTDError):
            DTD(
                element_types=("r",),
                attributes=(),
                content=DTD.build("r", {"r": "EMPTY"}).content,
                attrs_of={"r": frozenset({"ghost"})},
                root="r",
            )

    def test_bad_name_rejected(self):
        with pytest.raises(InvalidDTDError, match="invalid"):
            DTD.build("r", {"r": "EMPTY", "bad name": "EMPTY"})


class TestSize:
    def test_size_grows_with_content(self):
        small = DTD.build("r", {"r": "EMPTY"})
        large = DTD.build("r", {"r": "(a, a, a, a)", "a": "EMPTY"})
        assert large.size() > small.size()
