"""Unit tests for the linear-system model."""

from repro.ilp.bounds import papadimitriou_bound
from repro.ilp.model import EQ, GE, LE, LinearSystem, Row


class TestLinearSystem:
    def test_variables_registered_via_rows(self):
        system = LinearSystem()
        system.add_eq({"x": 1, "y": 2}, 3)
        assert set(system.variables) == {"x", "y"}
        assert system.num_rows == 1

    def test_zero_coefficients_dropped(self):
        system = LinearSystem()
        system.add_le({"x": 0, "y": 1}, 1)
        row = system.rows[0]
        assert dict(row.coeffs) == {"y": 1}

    def test_check_reports_violations(self):
        system = LinearSystem()
        system.add_eq({"x": 1}, 2, label="pin-x")
        system.add_ge({"y": 1}, 1)
        assert system.check({"x": 2, "y": 1}) == []
        violated = system.check({"x": 1, "y": 1})
        assert len(violated) == 1
        assert violated[0].label == "pin-x"

    def test_check_enforces_nonnegativity_and_upper(self):
        system = LinearSystem()
        system.ensure_var("x")
        system.set_upper("x", 5)
        assert system.check({"x": -1})
        assert system.check({"x": 6})
        assert not system.check({"x": 5})

    def test_upper_bound_tightens_only(self):
        system = LinearSystem()
        system.set_upper("x", 10)
        system.set_upper("x", 20)
        assert system.upper("x") == 10

    def test_copy_is_independent(self):
        system = LinearSystem()
        system.add_eq({"x": 1}, 1)
        clone = system.copy()
        clone.add_eq({"y": 1}, 2)
        assert system.num_rows == 1
        assert clone.num_rows == 2

    def test_max_abs_value(self):
        system = LinearSystem()
        system.add_eq({"x": -7}, 3)
        assert system.max_abs_value() == 7

    def test_row_evaluate_senses(self):
        assert Row((("x", 1),), LE, 2).evaluate({"x": 2})
        assert not Row((("x", 1),), LE, 2).evaluate({"x": 3})
        assert Row((("x", 1),), GE, 2).evaluate({"x": 2})
        assert Row((("x", 1),), EQ, 2).evaluate({"x": 2})
        assert not Row((("x", 1),), EQ, 2).evaluate({"x": 1})

    def test_missing_variables_count_zero(self):
        assert Row((("x", 1), ("y", 1)), EQ, 1).evaluate({"x": 1})

    def test_pretty_includes_label(self):
        row = Row((("x", 2),), LE, 4, "cap")
        assert "cap" in row.pretty()
        assert "2*x" in row.pretty()


class TestBounds:
    def test_formula(self):
        assert papadimitriou_bound(2, 1, 1) == 2 * 1 ** 3
        assert papadimitriou_bound(3, 2, 2) == 3 * (4) ** 5

    def test_degenerate_clamped(self):
        assert papadimitriou_bound(0, 0, 0) == 1
