"""Depth-safety regressions: tree operations beyond the recursion limit.

Witness trees for recursive DTDs are chains; all structural operations
must handle depths far beyond Python's default recursion limit.
"""

import sys

import pytest

from repro.xmltree.builder import element
from repro.xmltree.model import Element, XMLTree
from repro.xmltree.serialize import tree_to_string
from repro.xmltree.transform import splice_types

DEPTH = 5000


@pytest.fixture
def deep_tree():
    node = element("leaf")
    for index in range(DEPTH):
        label = "wrap" if index % 2 == 0 else "a"
        node = Element(label, children=[node])
    return XMLTree(Element("root", children=[node]))


class TestDeepTrees:
    def test_structure_validation(self, deep_tree):
        assert deep_tree.size() == DEPTH + 2
        # The point of the suite: these trees are deeper than naive
        # recursion could handle.
        assert DEPTH > sys.getrecursionlimit()

    def test_copy(self, deep_tree):
        clone = deep_tree.copy()
        assert clone.size() == deep_tree.size()
        assert clone.root is not deep_tree.root

    def test_splice(self, deep_tree):
        spliced = splice_types(deep_tree, {"wrap"})
        assert spliced.size() == deep_tree.size() - DEPTH // 2
        assert not spliced.ext("wrap")
        # Order/nesting of the kept nodes is preserved.
        assert len(spliced.ext("a")) == DEPTH // 2

    def test_serialize(self, deep_tree):
        text = tree_to_string(deep_tree, pretty=False)
        assert text.count("<a>") == DEPTH // 2
        assert text.endswith("</root>")

    def test_iteration(self, deep_tree):
        labels = set()
        for node in deep_tree.elements():
            labels.add(node.label)
        assert labels == {"root", "wrap", "a", "leaf"}
