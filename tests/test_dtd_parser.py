"""Unit tests for DTD declaration parsing and serialization."""

import pytest

from repro.dtd.parser import parse_dtd
from repro.dtd.serializer import dtd_to_string
from repro.errors import ParseError

TEACHERS = """
<!-- the Section 1 teachers DTD -->
<!ELEMENT teachers (teacher+)>
<!ELEMENT teacher (teach, research)>
<!ELEMENT teach (subject, subject)>
<!ELEMENT subject (#PCDATA)>
<!ELEMENT research (#PCDATA)>
<!ATTLIST teacher name CDATA #REQUIRED>
<!ATTLIST subject taught_by CDATA #REQUIRED>
"""


class TestParse:
    def test_teachers_dtd(self):
        d = parse_dtd(TEACHERS)
        assert d.root == "teachers"
        assert set(d.element_types) == {
            "teachers", "teacher", "teach", "subject", "research"
        }
        assert d.attrs("teacher") == frozenset({"name"})

    def test_first_element_is_default_root(self):
        d = parse_dtd("<!ELEMENT b EMPTY>\n<!ELEMENT a (b)>", root="a")
        assert d.root == "a"
        default = parse_dtd("<!ELEMENT a (b)>\n<!ELEMENT b EMPTY>")
        assert default.root == "a"

    def test_multiple_attributes_one_attlist(self):
        d = parse_dtd(
            "<!ELEMENT r EMPTY>"
            "<!ATTLIST r a CDATA #REQUIRED b CDATA #IMPLIED c ID #REQUIRED>"
        )
        assert d.attrs("r") == frozenset({"a", "b", "c"})

    def test_attlist_without_type_keywords(self):
        d = parse_dtd("<!ELEMENT r EMPTY>\n<!ATTLIST r x y>")
        assert d.attrs("r") == frozenset({"x", "y"})

    def test_enumerated_attribute_type(self):
        d = parse_dtd('<!ELEMENT r EMPTY>\n<!ATTLIST r kind (a|b|c) #REQUIRED>')
        assert d.attrs("r") == frozenset({"kind"})

    def test_id_idref_treated_as_plain_strings(self):
        # Footnote 1: the paper ignores ID/IDREF semantics.
        d = parse_dtd(
            "<!ELEMENT r (item*)>\n<!ELEMENT item EMPTY>\n"
            "<!ATTLIST item id ID #REQUIRED ref IDREF #IMPLIED>"
        )
        assert d.attrs("item") == frozenset({"id", "ref"})

    def test_comments_ignored(self):
        d = parse_dtd("<!-- c1 --><!ELEMENT r EMPTY><!-- c2 -->")
        assert d.root == "r"


class TestParseErrors:
    def test_no_elements(self):
        with pytest.raises(ParseError):
            parse_dtd("<!-- nothing here -->")

    def test_duplicate_element(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_dtd("<!ELEMENT r EMPTY><!ELEMENT r EMPTY>")

    def test_attlist_for_unknown_element(self):
        with pytest.raises(ParseError, match="undeclared"):
            parse_dtd("<!ELEMENT r EMPTY><!ATTLIST ghost a CDATA #REQUIRED>")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError, match="unrecognized"):
            parse_dtd("<!ELEMENT r EMPTY> stray text")


class TestRoundTrip:
    def test_serialize_parse_identity(self, d1):
        text = dtd_to_string(d1)
        again = parse_dtd(text)
        assert again.root == d1.root
        assert set(again.element_types) == set(d1.element_types)
        for tau in d1.element_types:
            assert again.attrs(tau) == d1.attrs(tau)
            assert str(again.content[tau]) == str(d1.content[tau])

    def test_root_serialized_first(self, d3):
        text = dtd_to_string(d3)
        assert text.splitlines()[0].startswith("<!ELEMENT school")
