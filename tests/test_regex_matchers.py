"""The two matchers (derivatives, Glushkov) agree — unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex.ast import (
    EPSILON,
    TEXT,
    TEXT_SYMBOL,
    Concat,
    Name,
    Optional,
    Plus,
    Regex,
    Star,
    Union,
)
from repro.regex.derivatives import matches as matches_derivative
from repro.regex.enumerate import words_up_to
from repro.regex.glushkov import GlushkovAutomaton
from repro.regex.parser import parse_content_model

_SYMBOLS = ["a", "b", "c"]


def _leaf() -> st.SearchStrategy[Regex]:
    return st.one_of(
        st.sampled_from([Name(s) for s in _SYMBOLS]),
        st.just(EPSILON),
        st.just(TEXT),
    )


def _regexes(max_depth: int = 3) -> st.SearchStrategy[Regex]:
    return st.recursive(
        _leaf(),
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda ab: Concat(ab)),
            st.tuples(inner, inner).map(lambda ab: Union(ab)),
            inner.map(Star),
            inner.map(Plus),
            inner.map(Optional),
        ),
        max_leaves=8,
    )


def _words(max_len: int = 4) -> st.SearchStrategy[list[str]]:
    return st.lists(
        st.sampled_from(_SYMBOLS + [TEXT_SYMBOL]), max_size=max_len
    )


class TestKnownLanguages:
    @pytest.mark.parametrize(
        "model,word,expected",
        [
            ("(a, b)", ["a", "b"], True),
            ("(a, b)", ["b", "a"], False),
            ("(a | b)", ["a"], True),
            ("(a | b)", ["a", "b"], False),
            ("(a)*", [], True),
            ("(a)*", ["a"] * 5, True),
            ("(a)+", [], False),
            ("(a)+", ["a"], True),
            ("a?", [], True),
            ("a?", ["a", "a"], False),
            ("EMPTY", [], True),
            ("EMPTY", ["a"], False),
            ("(#PCDATA)", [TEXT_SYMBOL], True),
            ("(#PCDATA)", ["a"], False),
            ("(a, (b | c)*)", ["a", "b", "c", "b"], True),
            ("(a, (b | c)*)", ["b"], False),
        ],
    )
    def test_both_matchers(self, model, word, expected):
        expr = parse_content_model(model)
        assert matches_derivative(expr, word) is expected
        assert GlushkovAutomaton(expr).accepts(word) is expected

    def test_repeated_symbol_positions(self):
        # Glushkov must distinguish the two `subject` positions.
        expr = parse_content_model("(subject, subject)")
        auto = GlushkovAutomaton(expr)
        assert auto.position_count == 2
        assert auto.accepts(["subject", "subject"])
        assert not auto.accepts(["subject"])
        assert not auto.accepts(["subject"] * 3)


class TestAgreementProperties:
    @settings(max_examples=300, deadline=None)
    @given(expr=_regexes(), word=_words())
    def test_derivative_and_glushkov_agree(self, expr, word):
        assert matches_derivative(expr, word) == GlushkovAutomaton(expr).accepts(word)

    @settings(max_examples=100, deadline=None)
    @given(expr=_regexes())
    def test_enumerated_words_are_accepted(self, expr):
        auto = GlushkovAutomaton(expr)
        for word in words_up_to(expr, 3):
            assert auto.accepts(word), f"{word} enumerated but rejected"
            assert matches_derivative(expr, list(word))

    @settings(max_examples=100, deadline=None)
    @given(expr=_regexes(), word=_words(3))
    def test_enumeration_is_complete_up_to_bound(self, expr, word):
        if matches_derivative(expr, word):
            assert tuple(word) in set(words_up_to(expr, len(word)))
