"""Fleet-vs-single differential: routing must not change a single byte.

A :class:`~repro.service.fleet.FleetRouter` over N backends speaks the
same line protocol (and, via :class:`~repro.service.http.HTTPFrontend`,
the same HTTP surface) as one ``repro serve`` process.  This suite pins
the strongest form of that claim: for every operation — successes,
structured errors, shed answers, expired deadlines — the *raw response
bytes* through a fleet at N in {1, 2, 3} equal a single backend's, on
both transports.  Expected bytes come from a fresh reference
:class:`CheckingServer` answering the same requests, so a drift on
either side fails the comparison.
"""

import asyncio
import json
import math

import pytest

from repro.dtd.serializer import dtd_to_string
from repro.ilp.condsys import CutRecord
from repro.service import persist
from repro.service.fleet import FleetRouter
from repro.service.http import HTTPFrontend
from repro.service.registry import SessionRegistry, fingerprint_for
from repro.service.server import CheckingServer
from repro.workloads.examples import figure1_tree, teachers_dtd_d1
from repro.workloads.generators import wide_flat_dtd
from repro.xmltree.serialize import tree_to_string

SIGMA1 = (
    "teacher.name -> teacher\n"
    "subject.taught_by -> subject\n"
    "subject.taught_by => teacher.name"
)
KEYS = "teacher.name -> teacher\nsubject.taught_by -> subject"
CHAIN = "t0.x <= t1.x\nt1.x <= t2.x"
CHAIN_PHIS = [
    "t0.x <= t2.x",
    "t2.x <= t0.x",
    "t0.x <= t1.x",
    "t1.x <= t0.x",
    "t1.x <= t2.x",
    "t2.x <= t1.x",
]


def _specs() -> dict:
    return {
        "inconsistent": (dtd_to_string(teachers_dtd_d1()), SIGMA1),
        "consistent": (dtd_to_string(teachers_dtd_d1()), KEYS),
        "chain": (dtd_to_string(wide_flat_dtd(4)), CHAIN),
    }


def _request_suite() -> list:
    """Every op, every spec, plus the interesting error shapes."""
    suite = []
    doc = tree_to_string(figure1_tree())
    for name, (dtd_text, sigma_text) in _specs().items():
        spec = {"dtd": dtd_text, "constraints": sigma_text}
        suite.append({"op": "open", **spec})
        suite.append({"op": "check", **spec})
        suite.append({"op": "diagnose", **spec})
        if name == "chain":
            suite.append({"op": "implies_all", **spec, "phis": CHAIN_PHIS})
            suite.append({"op": "implies", **spec, "phi": CHAIN_PHIS[0]})
        else:
            phi = "subject.taught_by <= teacher.name"
            suite.append({"op": "implies", **spec, "phi": phi})
            suite.append({"op": "validate", **spec, "document": doc})
    dtd_text, sigma_text = _specs()["consistent"]
    spec = {"dtd": dtd_text, "constraints": sigma_text}
    # Structured errors must route byte-identically too.
    suite.append({"op": "check", "dtd": "<!ELEMENT broken"})
    suite.append({"op": "implies", **spec, "phi": "not a constraint"})
    suite.append({"op": "implies", **spec})  # missing phi
    suite.append({"op": "check", "session": "no-such-fingerprint"})
    suite.append({"op": "check", **spec, "deadline": 0.0})
    suite.append({"op": "implies_all", **spec, "phis": "not-a-list"})
    # A session op by fingerprint after the inline open above warmed it.
    suite.append(
        {
            "op": "implies",
            "session": fingerprint_for(dtd_text, sigma_text),
            "phi": "subject.taught_by <= teacher.name",
        }
    )
    return suite


def _line_exchange(address, requests) -> list:
    """Raw response lines (bytes), one request at a time, one connection."""

    async def run():
        reader, writer = await asyncio.open_connection(*address)
        lines = []
        for request in requests:
            writer.write((json.dumps(request) + "\n").encode("utf-8"))
            await writer.drain()
            lines.append(await reader.readline())
        writer.close()
        return lines

    return asyncio.run(run())


class _Fleet:
    """N in-process backends plus a router, all on background threads."""

    def __init__(
        self, n: int, mode: str = "replay", start: bool = True, **router_kwargs
    ):
        self.backends = []
        specs = []
        for _ in range(n):
            backend = CheckingServer(SessionRegistry(mode=mode))
            host, port = backend.start_background()
            self.backends.append(backend)
            specs.append(f"{host}:{port}")
        self.router = FleetRouter(specs, **router_kwargs)
        # The HTTP tests attach an HTTPFrontend instead, which runs the
        # router on its own loop (start=False leaves it unstarted).
        self.address = self.router.start_background() if start else None

    def close(self) -> None:
        self.router.close()
        for backend in self.backends:
            backend.close()

    def __enter__(self) -> "_Fleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@pytest.mark.parametrize("n", [1, 2, 3])
def test_fleet_line_protocol_is_byte_identical_to_single_serve(n):
    requests = [
        {"id": index, **request}
        for index, request in enumerate(_request_suite())
    ]
    reference = CheckingServer(SessionRegistry())
    reference.start_background()
    try:
        with _Fleet(n, wave_chunk=2) as fleet:
            fleet_bytes = _line_exchange(fleet.address, requests)
            single_bytes = _line_exchange(reference.address, requests)
            for request, ours, theirs in zip(requests, fleet_bytes, single_bytes):
                assert ours == theirs, (n, request["op"])
            if n > 1:
                # The 6-phi chain batch fanned out across the backends.
                assert fleet.router.stats.waves >= 1
                assert fleet.router.stats.wave_chunks >= 2
    finally:
        reference.close()


def test_multi_wave_fan_out_stays_byte_identical():
    """wave_chunk=1 over 3 backends forces multiple waves (with cut
    syncs between them) for one batch; the merged answer must still be
    the single server's exact bytes."""
    dtd_text, sigma_text = _specs()["chain"]
    request = {
        "id": "batch",
        "op": "implies_all",
        "dtd": dtd_text,
        "constraints": sigma_text,
        "phis": CHAIN_PHIS,
    }
    reference = CheckingServer(SessionRegistry())
    reference.start_background()
    try:
        with _Fleet(3, wave_chunk=1) as fleet:
            [ours] = _line_exchange(fleet.address, [request])
            [theirs] = _line_exchange(reference.address, [request])
            assert ours == theirs
            assert fleet.router.stats.waves >= 2
            assert fleet.router.stats.cut_syncs >= 1
    finally:
        reference.close()


def test_fleet_shard_affinity_reuses_backend_sessions():
    """The same spec always lands on the same backend: re-asking is a
    response-cache hit *somewhere* in the fleet, and only one backend
    ever admits the session."""
    dtd_text, sigma_text = _specs()["consistent"]
    request = {"op": "check", "dtd": dtd_text, "constraints": sigma_text}
    with _Fleet(3) as fleet:
        first = _line_exchange(fleet.address, [{"id": 1, **request}])
        second = _line_exchange(fleet.address, [{"id": 1, **request}])
        assert first == second
        opened = [
            backend.registry.stats()["sessions_opened"]
            for backend in fleet.backends
        ]
        hits = [
            backend.registry.stats()["session_hits"]
            for backend in fleet.backends
        ]
        assert sum(opened) == 1, opened
        assert sum(hits) >= 1, hits


# ---------------------------------------------------------------------------
# Admission edges: shed and deadline answers match a single backend's bytes
# ---------------------------------------------------------------------------


def test_router_shed_bytes_match_single_server_shed():
    """max_inflight=0 on the router vs max_inflight=0 on a single
    server: the overloaded envelope (message, retry_after) is
    byte-identical — the router reuses the server's admission wording
    and hint formula."""
    dtd_text, sigma_text = _specs()["consistent"]
    request = {
        "id": "shed",
        "op": "check",
        "dtd": dtd_text,
        "constraints": sigma_text,
    }
    reference = CheckingServer(SessionRegistry(), max_inflight=0)
    reference.start_background()
    try:
        with _Fleet(2, max_inflight=0) as fleet:
            [ours] = _line_exchange(fleet.address, [request])
            [theirs] = _line_exchange(reference.address, [request])
            assert ours == theirs
            payload = json.loads(ours)
            assert payload["error"]["type"] == "overloaded"
            assert fleet.router.stats.requests_shed == 1
    finally:
        reference.close()


def _http_exchange(address, request, path=None):
    import http.client

    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(
            "POST",
            path or f"/v1/{request['op']}",
            body=json.dumps(request),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def test_fleet_http_bodies_match_single_serve_http():
    """The HTTP front end composes with the router unchanged: for every
    suite request the status and body equal a single server's HTTP
    answer (which the service differential suite already pins to the
    line protocol)."""
    requests = [
        {"id": index, **request}
        for index, request in enumerate(_request_suite())
    ]
    reference = CheckingServer(SessionRegistry())
    reference_front = HTTPFrontend(reference)
    reference_address = reference_front.start_background()
    try:
        with _Fleet(2, wave_chunk=2, start=False) as fleet:
            front = HTTPFrontend(fleet.router)
            address = front.start_background()
            try:
                for request in requests:
                    ours = _http_exchange(address, request)
                    theirs = _http_exchange(reference_address, request)
                    assert ours == theirs or (
                        ours[0] == theirs[0] and ours[2] == theirs[2]
                    ), request["op"]
            finally:
                front.close()
    finally:
        reference_front.close()


def test_fleet_http_shed_answers_429_with_retry_after():
    dtd_text, sigma_text = _specs()["consistent"]
    request = {
        "id": "shed",
        "op": "check",
        "dtd": dtd_text,
        "constraints": sigma_text,
    }
    with _Fleet(2, max_inflight=0, start=False) as fleet:
        front = HTTPFrontend(fleet.router)
        address = front.start_background()
        try:
            status, headers, body = _http_exchange(address, request)
            assert status == 429
            payload = json.loads(body)
            assert payload["error"]["type"] == "overloaded"
            assert int(headers["Retry-After"]) == max(
                1, math.ceil(payload["error"]["retry_after"])
            )
        finally:
            front.close()


def test_fleet_http_budget_exceeded_answers_504():
    dtd_text, sigma_text = _specs()["consistent"]
    request = {
        "id": "late",
        "op": "check",
        "dtd": dtd_text,
        "constraints": sigma_text,
        "deadline": 0.0,
    }
    reference = CheckingServer(SessionRegistry())
    reference_front = HTTPFrontend(reference)
    reference_address = reference_front.start_background()
    try:
        with _Fleet(2, start=False) as fleet:
            front = HTTPFrontend(fleet.router)
            address = front.start_background()
            try:
                status, _, body = _http_exchange(address, request)
                ref_status, _, ref_body = _http_exchange(
                    reference_address, request
                )
                assert (status, body) == (ref_status, ref_body)
                assert status == 504
                assert json.loads(body)["error"]["type"] == "budget_exceeded"
            finally:
                front.close()
    finally:
        reference_front.close()


# ---------------------------------------------------------------------------
# Warm mode: wire-level cut transport
# ---------------------------------------------------------------------------


def test_export_adopt_cuts_round_trip_real_records():
    """A warm backend's cut pool exports in portable packed form and
    adopts into a *different* backend's pool with exact dedup counts.

    The donor's pool is seeded with records in the exact shape the
    solver's ``_CutPool.export()`` produces (canonical coefficient
    tuples plus a guard), so the wire transport is exercised on genuine
    record structure regardless of whether this spec's solve happens to
    learn connectivity cuts organically."""
    dtd_text, sigma_text = _specs()["chain"]
    spec = {"dtd": dtd_text, "constraints": sigma_text}
    donor = CheckingServer(SessionRegistry(mode="warm"))
    recipient = CheckingServer(SessionRegistry(mode="warm"))
    donor.start_background()
    recipient.start_background()
    try:
        session = donor.registry.session_for(dtd_text, sigma_text)
        seeded = [
            CutRecord(((1, 1), (2, -1)), frozenset({"t0", "t1"}), "conn"),
            CutRecord(((3, 1),), frozenset({"t2"}), ""),
        ]
        for record in seeded:
            session._cut_records[record.key] = record
        [raw] = _line_exchange(
            donor.address, [{"id": "x", "op": "export_cuts", **spec}]
        )
        exported = json.loads(raw)
        assert exported["ok"]
        cuts = exported["result"]["cuts"]
        assert len(cuts) == len(seeded)
        unpacked = [persist.unpack_value(packed) for packed in cuts]
        for record in unpacked:
            assert isinstance(record, CutRecord)
        assert {record.key for record in unpacked} == {
            record.key for record in seeded
        }
        [raw] = _line_exchange(
            recipient.address,
            [{"id": "y", "op": "adopt_cuts", **spec, "cuts": cuts}],
        )
        adopted = json.loads(raw)
        assert adopted["ok"]
        assert adopted["result"]["adopted"] == len(cuts)
        assert adopted["result"]["duplicates"] == 0
        # Re-adopting is pure dedup.
        [raw] = _line_exchange(
            recipient.address,
            [{"id": "z", "op": "adopt_cuts", **spec, "cuts": cuts}],
        )
        again = json.loads(raw)
        assert again["result"]["adopted"] == 0
        assert again["result"]["duplicates"] == len(cuts)
    finally:
        donor.close()
        recipient.close()


def test_warm_fleet_fan_out_matches_single_warm_verdicts():
    """Warm mode trades byte-identity of stats for workspace reuse (the
    repo-wide convention); through the fleet the *verdicts* of a fanned
    batch must still match a single warm server, and the wave-boundary
    cut sync must have run."""
    dtd_text, sigma_text = _specs()["chain"]
    request = {
        "id": "warm",
        "op": "implies_all",
        "dtd": dtd_text,
        "constraints": sigma_text,
        "phis": CHAIN_PHIS,
    }
    reference = CheckingServer(SessionRegistry(mode="warm"))
    reference.start_background()
    try:
        with _Fleet(2, mode="warm", wave_chunk=1) as fleet:
            [ours] = _line_exchange(fleet.address, [request])
            [theirs] = _line_exchange(reference.address, [request])
            mine = json.loads(ours)["result"]["results"]
            ref = json.loads(theirs)["result"]["results"]
            assert [r["implied"] for r in mine] == [r["implied"] for r in ref]
            assert fleet.router.stats.cut_syncs >= 1
    finally:
        reference.close()


# ---------------------------------------------------------------------------
# Router-local surface
# ---------------------------------------------------------------------------


def test_stats_op_answers_router_counters_locally():
    with _Fleet(2) as fleet:
        dtd_text, sigma_text = _specs()["consistent"]
        _line_exchange(
            fleet.address,
            [{"id": 1, "op": "check", "dtd": dtd_text, "constraints": sigma_text}],
        )
        [raw] = _line_exchange(fleet.address, [{"id": 2, "op": "stats"}])
        payload = json.loads(raw)
        assert payload["ok"]
        router = payload["result"]["router"]
        assert router["backends"] == 2
        assert router["routed"] >= 1
        assert payload["result"]["counters"]["router.backends"] == 2
        metrics = fleet.router.render_metrics()
        assert "repro_router_routed_total" in metrics
        assert "repro_router_backends 2" in metrics
