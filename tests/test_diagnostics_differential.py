"""Differential testing of the toggled diagnostics engine.

The toggled engine (one assembled ``Psi(D, Sigma ∪ ¬Sigma)``, row-bound
flips per subset; DESIGN.md section 6) must return *identical* MUS and
redundancy answers to the rebuild-per-subset oracle — the pre-toggle
implementation kept behind ``toggled=False``, which decides every probe
with a full ``check_consistency``/``implies`` call.  Random instances
come from the same generator family as :mod:`tests.test_differential_fuzz`.

Alongside the oracle agreement, the acceptance invariant is asserted on
every toggled call: **exactly one base assembly**, no matter how many
subsets the deletion filter and the redundancy audit probe.
"""

import pytest

from repro.analysis.diagnostics import (
    DiagnosticsStats,
    diagnose,
    minimal_inconsistent_subset,
    redundant_constraints,
)
from repro.checkers.config import CheckerConfig
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.errors import ComplexityLimitError, InvalidConstraintError
from repro.workloads.generators import random_dtd, random_unary_constraints

#: Seeded sweep size, chunked for readable failure granularity.
NUM_SEEDS = 60
CHUNK = 15


def _instance(seed: int):
    """The seeded instance family (same shape as the solver fuzz sweep)."""
    dtd = random_dtd(seed, num_types=3 + seed % 3)
    sigma = random_unary_constraints(
        seed * 31 + 7,
        dtd,
        num_keys=seed % 3,
        num_fks=(seed + 1) % 3,
        num_neg_keys=seed % 2,
        num_neg_inclusions=(seed + 1) % 2,
    )
    return dtd, sigma


def _canonical(constraints) -> list[str]:
    return sorted(str(phi) for phi in constraints)


@pytest.mark.parametrize("start", range(0, NUM_SEEDS, CHUNK))
def test_diagnose_matches_rebuild_oracle(start):
    """Toggled ``diagnose`` == rebuild ``diagnose`` on seeded instances,
    with exactly one assembly per toggled call."""
    checked = 0
    for seed in range(start, start + CHUNK):
        dtd, sigma = _instance(seed)
        try:
            toggled = diagnose(dtd, sigma, toggled=True)
            rebuild = diagnose(dtd, sigma, toggled=False)
        except (InvalidConstraintError, ComplexityLimitError):
            continue  # outside the decidable/capped fragment: skip uniformly
        checked += 1
        assert toggled.consistent == rebuild.consistent, f"seed {seed}"
        assert _canonical(toggled.mus) == _canonical(rebuild.mus), f"seed {seed}"
        assert _canonical(toggled.redundant) == _canonical(rebuild.redundant), (
            f"seed {seed}"
        )
        assert toggled.stats.method == "toggled", f"seed {seed}"
        assert toggled.stats.assemblies == 1, (
            f"seed {seed}: {toggled.stats.assemblies} assemblies for "
            f"{toggled.stats.probes} probes"
        )
        assert rebuild.stats.method == "rebuild"
    assert checked > 0


def test_mus_single_assembly_and_oracle_agreement():
    """MUS standalone: toggle-driven deletion filter equals the oracle and
    performs one assembly for the whole filter."""
    dtd = DTD.build(
        "r", {"r": "(a*, b*)", "a": "EMPTY", "b": "EMPTY"},
        attrs={"a": ["x"], "b": ["y"]},
    )
    sigma = parse_constraints(
        "a.x -> a\na.x !-> a\nb.y -> b\na.x <= a.x"
    )
    stats = DiagnosticsStats()
    mus = minimal_inconsistent_subset(dtd, sigma, stats=stats)
    oracle = minimal_inconsistent_subset(dtd, sigma, toggled=False)
    assert _canonical(mus) == _canonical(oracle) == ["a.x !-> a", "a.x -> a"]
    assert stats.assemblies == 1
    assert stats.probes == len(sigma) + 1  # full set + one deletion probe each


def test_redundancy_single_assembly_and_oracle_agreement():
    dtd = DTD.build(
        "r", {"r": "(a*, b*, c*)", "a": "EMPTY", "b": "EMPTY", "c": "EMPTY"},
        attrs={t: ["x"] for t in "abc"},
    )
    sigma = parse_constraints("a.x <= b.x\nb.x <= c.x\na.x <= c.x")
    stats = DiagnosticsStats()
    redundant = redundant_constraints(dtd, sigma, stats=stats)
    oracle = redundant_constraints(dtd, sigma, toggled=False)
    assert _canonical(redundant) == _canonical(oracle) == ["a.x <= c.x"]
    assert stats.assemblies == 1
    assert stats.probes == len(sigma)  # one implication probe per constraint


def test_foreign_key_redundancy_probes_both_components():
    """An FK is redundant only when both its inclusion and key components
    are implied — the toggled engine probes each component's negation."""
    dtd = DTD.build(
        "r", {"r": "(f*, d)", "f": "EMPTY", "d": "EMPTY"},
        attrs={"f": ["ref"], "d": ["id"]},
    )
    # d is a singleton, so d.id -> d holds vacuously; the FK is then
    # implied by its own inclusion component being restated.
    sigma = parse_constraints("f.ref => d.id\nf.ref <= d.id\nd.id -> d")
    toggled = redundant_constraints(dtd, sigma)
    oracle = redundant_constraints(dtd, sigma, toggled=False)
    assert _canonical(toggled) == _canonical(oracle)
    assert "f.ref => d.id" in _canonical(toggled)


def test_exact_backend_probes_match_scipy():
    """The toggled probes agree across solver backends (the certified twin
    takes the same row toggles as the float engine)."""
    exact = CheckerConfig(want_witness=False, backend="exact")
    for seed in (3, 7, 11, 19):
        dtd, sigma = _instance(seed)
        try:
            scipy_report = diagnose(dtd, sigma)
            exact_report = diagnose(dtd, sigma, exact)
        except (InvalidConstraintError, ComplexityLimitError):
            continue
        assert scipy_report.consistent == exact_report.consistent, f"seed {seed}"
        assert _canonical(scipy_report.mus) == _canonical(exact_report.mus)
        assert _canonical(scipy_report.redundant) == _canonical(
            exact_report.redundant
        )
        assert exact_report.stats.assemblies <= 1


def test_incremental_ablation_routes_to_rebuild():
    """``CheckerConfig(incremental=False)`` — the from-scratch solver
    ablation — must reach the checkers, so diagnostics routes it to the
    rebuild path (a toggle workspace is inherently incremental state)."""
    dtd, sigma = _instance(3)
    config = CheckerConfig(want_witness=False, incremental=False)
    report = diagnose(dtd, sigma, config)
    assert report.stats.method == "rebuild"
    assert diagnose(dtd, sigma).consistent == report.consistent


def test_multi_attribute_specs_fall_back_to_rebuild():
    """Outside the unary fragment the rebuild path answers (keys-only
    dispatch in the checkers), flagged in the stats."""
    dtd = DTD.build(
        "r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x", "y"]}
    )
    sigma = parse_constraints("a[x,y] -> a")
    report = diagnose(dtd, sigma)
    assert report.consistent
    assert report.stats.method == "rebuild"


def test_inconsistent_subset_requires_inconsistency():
    dtd = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]})
    with pytest.raises(InvalidConstraintError, match="consistent"):
        minimal_inconsistent_subset(dtd, parse_constraints("a.x -> a"))
