"""Differential testing of the toggled diagnostics engine.

The toggled engine (one assembled ``Psi(D, Sigma ∪ ¬Sigma)``, row-bound
flips per subset; DESIGN.md section 6) must return *identical* MUS and
redundancy answers to the rebuild-per-subset oracle — the pre-toggle
implementation kept behind ``toggled=False``, which decides every probe
with a full ``check_consistency``/``implies`` call.  Random instances
come from the same generator family as :mod:`tests.test_differential_fuzz`.

Alongside the oracle agreement, the acceptance invariant is asserted on
every toggled call: **exactly one base assembly**, no matter how many
subsets the deletion filter and the redundancy audit probe.
"""

import pytest

from repro.analysis.diagnostics import (
    DiagnosticsStats,
    diagnose,
    mus,
    redundant_constraints,
)
from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.constraints.parser import parse_constraints
from repro.dtd.model import DTD
from repro.errors import ComplexityLimitError, InvalidConstraintError
from repro.ilp.condsys import WorkerPool
from repro.workloads.generators import (
    random_dtd,
    random_unary_constraints,
    registrar_mus_family,
)

#: Seeded sweep size, chunked for readable failure granularity.
NUM_SEEDS = 60
CHUNK = 15


def _instance(seed: int):
    """The seeded instance family (same shape as the solver fuzz sweep)."""
    dtd = random_dtd(seed, num_types=3 + seed % 3)
    sigma = random_unary_constraints(
        seed * 31 + 7,
        dtd,
        num_keys=seed % 3,
        num_fks=(seed + 1) % 3,
        num_neg_keys=seed % 2,
        num_neg_inclusions=(seed + 1) % 2,
    )
    return dtd, sigma


def _canonical(constraints) -> list[str]:
    return sorted(str(phi) for phi in constraints)


@pytest.mark.parametrize("start", range(0, NUM_SEEDS, CHUNK))
def test_diagnose_matches_rebuild_oracle(start):
    """Toggled ``diagnose`` == rebuild ``diagnose`` on seeded instances,
    with exactly one assembly per toggled call."""
    checked = 0
    for seed in range(start, start + CHUNK):
        dtd, sigma = _instance(seed)
        try:
            toggled = diagnose(dtd, sigma, toggled=True)
            rebuild = diagnose(dtd, sigma, toggled=False)
        except (InvalidConstraintError, ComplexityLimitError):
            continue  # outside the decidable/capped fragment: skip uniformly
        checked += 1
        assert toggled.consistent == rebuild.consistent, f"seed {seed}"
        assert _canonical(toggled.mus) == _canonical(rebuild.mus), f"seed {seed}"
        assert _canonical(toggled.redundant) == _canonical(rebuild.redundant), (
            f"seed {seed}"
        )
        assert toggled.stats.method == "toggled", f"seed {seed}"
        assert toggled.stats.assemblies == 1, (
            f"seed {seed}: {toggled.stats.assemblies} assemblies for "
            f"{toggled.stats.probes} probes"
        )
        assert rebuild.stats.method == "rebuild"
    assert checked > 0


def test_mus_single_assembly_and_oracle_agreement():
    """MUS standalone: toggle-driven deletion filter equals the oracle and
    performs one assembly for the whole filter."""
    dtd = DTD.build(
        "r", {"r": "(a*, b*)", "a": "EMPTY", "b": "EMPTY"},
        attrs={"a": ["x"], "b": ["y"]},
    )
    sigma = parse_constraints(
        "a.x -> a\na.x !-> a\nb.y -> b\na.x <= a.x"
    )
    stats = DiagnosticsStats()
    core = mus(dtd, sigma, method="deletion", stats=stats)
    oracle = mus(dtd, sigma, method="deletion", toggled=False)
    assert _canonical(core) == _canonical(oracle) == ["a.x !-> a", "a.x -> a"]
    assert stats.assemblies == 1
    assert stats.probes == len(sigma) + 1  # full set + one deletion probe each


def test_redundancy_single_assembly_and_oracle_agreement():
    dtd = DTD.build(
        "r", {"r": "(a*, b*, c*)", "a": "EMPTY", "b": "EMPTY", "c": "EMPTY"},
        attrs={t: ["x"] for t in "abc"},
    )
    sigma = parse_constraints("a.x <= b.x\nb.x <= c.x\na.x <= c.x")
    stats = DiagnosticsStats()
    redundant = redundant_constraints(dtd, sigma, stats=stats)
    oracle = redundant_constraints(dtd, sigma, toggled=False)
    assert _canonical(redundant) == _canonical(oracle) == ["a.x <= c.x"]
    assert stats.assemblies == 1
    assert stats.probes == len(sigma)  # one implication probe per constraint


def test_foreign_key_redundancy_probes_both_components():
    """An FK is redundant only when both its inclusion and key components
    are implied — the toggled engine probes each component's negation."""
    dtd = DTD.build(
        "r", {"r": "(f*, d)", "f": "EMPTY", "d": "EMPTY"},
        attrs={"f": ["ref"], "d": ["id"]},
    )
    # d is a singleton, so d.id -> d holds vacuously; the FK is then
    # implied by its own inclusion component being restated.
    sigma = parse_constraints("f.ref => d.id\nf.ref <= d.id\nd.id -> d")
    toggled = redundant_constraints(dtd, sigma)
    oracle = redundant_constraints(dtd, sigma, toggled=False)
    assert _canonical(toggled) == _canonical(oracle)
    assert "f.ref => d.id" in _canonical(toggled)


def test_exact_backend_probes_match_scipy():
    """The toggled probes agree across solver backends (the certified twin
    takes the same row toggles as the float engine)."""
    exact = CheckerConfig(want_witness=False, backend="exact")
    for seed in (3, 7, 11, 19):
        dtd, sigma = _instance(seed)
        try:
            scipy_report = diagnose(dtd, sigma)
            exact_report = diagnose(dtd, sigma, exact)
        except (InvalidConstraintError, ComplexityLimitError):
            continue
        assert scipy_report.consistent == exact_report.consistent, f"seed {seed}"
        assert _canonical(scipy_report.mus) == _canonical(exact_report.mus)
        assert _canonical(scipy_report.redundant) == _canonical(
            exact_report.redundant
        )
        assert exact_report.stats.assemblies <= 1


def test_incremental_ablation_routes_to_rebuild():
    """``CheckerConfig(incremental=False)`` — the from-scratch solver
    ablation — must reach the checkers, so diagnostics routes it to the
    rebuild path (a toggle workspace is inherently incremental state)."""
    dtd, sigma = _instance(3)
    config = CheckerConfig(want_witness=False, incremental=False)
    report = diagnose(dtd, sigma, config)
    assert report.stats.method == "rebuild"
    assert diagnose(dtd, sigma).consistent == report.consistent


def test_multi_attribute_specs_fall_back_to_rebuild():
    """Outside the unary fragment the rebuild path answers (keys-only
    dispatch in the checkers), flagged in the stats."""
    dtd = DTD.build(
        "r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x", "y"]}
    )
    sigma = parse_constraints("a[x,y] -> a")
    report = diagnose(dtd, sigma)
    assert report.consistent
    assert report.stats.method == "rebuild"


def test_inconsistent_subset_requires_inconsistency():
    dtd = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]})
    with pytest.raises(InvalidConstraintError, match="consistent"):
        mus(dtd, parse_constraints("a.x -> a"))


# ---------------------------------------------------------------------------
# QuickXplain vs the deletion filter (DESIGN.md section 7)
# ---------------------------------------------------------------------------


def _assert_valid_mus(dtd, sigma, core, seed):
    """Semantic MUS check: inconsistent, and every element necessary.

    QuickXplain and the deletion filter both return *minimal* inconsistent
    subsets, but on specifications with several distinct MUSes they may
    legitimately return different ones — equivalence is semantic, not
    syntactic, so each result is verified against the checker directly.
    """
    config = CheckerConfig(want_witness=False)
    assert set(core) <= set(sigma), f"seed {seed}: core not a subset"
    assert not check_consistency(dtd, core, config).consistent, (
        f"seed {seed}: reported core is not inconsistent"
    )
    for index in range(len(core)):
        subset = core[:index] + core[index + 1:]
        assert check_consistency(dtd, subset, config).consistent, (
            f"seed {seed}: core element {core[index]} is not necessary"
        )


def test_quickxplain_equals_deletion_on_seeded_instances():
    """Both filters return valid minimal cores on every seeded
    inconsistent instance, with identical consistency verdicts.  (Probe
    counts are not compared here — QuickXplain's constant factor can
    exceed the deletion filter's on tiny Sigma; the |Sigma| >= 8 payoff
    is gated in test_quickxplain_saves_probes_on_large_specifications
    and benchmarks/bench_parallel.py.)"""
    checked = 0
    for seed in range(NUM_SEEDS):
        dtd, sigma = _instance(seed)
        try:
            report = diagnose(dtd, sigma)
        except (InvalidConstraintError, ComplexityLimitError):
            continue
        if report.consistent or not report.dtd_satisfiable:
            continue
        qx_stats, del_stats = DiagnosticsStats(), DiagnosticsStats()
        qx = mus(dtd, sigma, stats=qx_stats)
        deletion = mus(dtd, sigma, method="deletion", stats=del_stats)
        assert qx_stats.mus_method == "quickxplain"
        assert del_stats.mus_method == "deletion"
        _assert_valid_mus(dtd, sigma, qx, seed)
        _assert_valid_mus(dtd, sigma, deletion, seed)
        checked += 1
    assert checked > 0


def test_quickxplain_toggled_matches_rebuild_oracle():
    """The toggled QuickXplain run and the rebuild-per-subset QuickXplain
    run drive the same filter over the same subset oracle, so their cores
    are identical — not just both-minimal."""
    checked = 0
    for seed in range(NUM_SEEDS):
        dtd, sigma = _instance(seed)
        try:
            report = diagnose(dtd, sigma)
        except (InvalidConstraintError, ComplexityLimitError):
            continue
        if report.consistent or not report.dtd_satisfiable:
            continue
        toggled = mus(dtd, sigma)
        rebuild = mus(dtd, sigma, toggled=False)
        assert _canonical(toggled) == _canonical(rebuild), f"seed {seed}"
        checked += 1
    assert checked > 0


def test_quickxplain_saves_probes_on_large_specifications():
    """On |Sigma| >= 8 with a small conflict, QuickXplain probes strictly
    fewer subsets than the deletion filter (the section-7 payoff; the
    benchmark gate re-asserts this with the full registrar family)."""
    dtd, sigma = registrar_mus_family(8)
    assert len(sigma) >= 8
    qx_stats, del_stats = DiagnosticsStats(), DiagnosticsStats()
    qx = mus(dtd, sigma, stats=qx_stats)
    deletion = mus(dtd, sigma, method="deletion", stats=del_stats)
    assert _canonical(qx) == _canonical(deletion)
    assert del_stats.mus_probes == len(sigma)
    assert qx_stats.mus_probes < del_stats.mus_probes, (
        f"quickxplain {qx_stats.mus_probes} probes vs deletion "
        f"{del_stats.mus_probes}"
    )


def test_diagnose_mus_method_selects_the_filter():
    """``diagnose`` exposes the filter choice and stamps it in the stats."""
    dtd, sigma = _instance(3)
    default = diagnose(dtd, sigma)
    deletion = diagnose(dtd, sigma, mus_method="deletion")
    assert default.consistent == deletion.consistent
    if not default.consistent:
        _assert_valid_mus(dtd, sigma, default.mus, "diagnose-default")
        _assert_valid_mus(dtd, sigma, deletion.mus, "diagnose-deletion")
        assert default.stats.mus_method == "quickxplain"
        assert deletion.stats.mus_method == "deletion"


# ---------------------------------------------------------------------------
# Parallel audit probes (jobs sweep)
# ---------------------------------------------------------------------------


def test_redundancy_audit_jobs_sweep():
    """The parallel audit returns the sequential answers at every worker
    count; each worker pays its own assembly (the single-owner rule)."""
    dtd = DTD.build(
        "r", {"r": "(a*, b*, c*, d*)", "a": "EMPTY", "b": "EMPTY",
              "c": "EMPTY", "d": "EMPTY"},
        attrs={t: ["x"] for t in "abcd"},
    )
    sigma = parse_constraints(
        "a.x <= b.x\nb.x <= c.x\na.x <= c.x\nc.x <= d.x\nb.x <= d.x"
    )
    baseline = _canonical(redundant_constraints(dtd, sigma))
    for jobs in (2, 4):
        stats = DiagnosticsStats()
        config = CheckerConfig(want_witness=False, jobs=jobs)
        parallel = redundant_constraints(dtd, sigma, config, stats=stats)
        assert _canonical(parallel) == baseline, f"jobs={jobs}"
        if WorkerPool.available():
            assert stats.workers_spawned == min(jobs, len(sigma))
            assert 1 <= stats.assemblies <= 1 + stats.workers_spawned
