"""Run every docstring example in the package as a test.

The docstrings double as the API documentation; their examples must stay
executable and truthful (one of them once claimed the wrong consistency
verdict — this test exists so that cannot recur).
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _module_names():
    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield modinfo.name


@pytest.mark.parametrize("module_name", sorted(_module_names()))
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module_name}"
