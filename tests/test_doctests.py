"""Run every docstring example in the package as a test.

The docstrings double as the API documentation; their examples must stay
executable and truthful (one of them once claimed the wrong consistency
verdict — this test exists so that cannot recur).
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _module_names():
    for modinfo in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if modinfo.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield modinfo.name


@pytest.mark.parametrize("module_name", sorted(_module_names()))
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module_name}"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.analysis.diagnostics",
        "repro.ilp.assembled",
        "repro.ilp.condsys",
    ],
)
def test_diagnostics_layer_modules_keep_examples(module_name):
    """The toggleable-row layer documents itself with runnable examples;
    this guard keeps them from being silently dropped (the sweep above
    would vacuously pass on an example-free module)."""
    module = importlib.import_module(module_name)
    examples = sum(
        len(test.examples) for test in doctest.DocTestFinder().find(module)
    )
    assert examples > 0, f"{module_name} lost its doctest examples"


def _surface_examples(obj) -> int:
    """Runnable doctest examples attached directly to one API object."""
    return sum(
        len(test.examples) for test in doctest.DocTestFinder().find(obj)
    )


def test_parallel_surface_keeps_examples():
    """The section-7 public surface documents itself with runnable
    examples: the ``jobs`` entry point, the per-worker workspace clone,
    and the QuickXplain MUS.  The module sweep above executes them; this
    guard keeps them from being silently dropped."""
    from repro.analysis.diagnostics import mus
    from repro.ilp.condsys import SolveWorkspace, solve_conditional_system

    for obj, needle in (
        (solve_conditional_system, "jobs"),
        (SolveWorkspace.clone, "clone"),
        (mus, "quickxplain"),
    ):
        assert _surface_examples(obj) > 0, f"{obj.__qualname__} lost its example"
        assert needle in (obj.__doc__ or ""), (
            f"{obj.__qualname__} no longer documents {needle!r}"
        )
