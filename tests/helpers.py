"""Shared test helpers."""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.encoding.combined import build_encoding
from repro.errors import SolverError
from repro.ilp.condsys import solve_conditional_system
from repro.witness.synthesize import synthesize_witness


def synthesize_any_tree(dtd: DTD):
    """Solve the empty-Sigma encoding and synthesize a witness tree.

    Returns ``(tree, solution_values, simple_dtd)``; raises
    :class:`SolverError` when the DTD has no valid tree (callers filter
    with ``has_valid_tree`` first).
    """
    encoding = build_encoding(dtd, [])
    result, _stats = solve_conditional_system(encoding.condsys)
    if not result.feasible:
        raise SolverError("DTD admits no valid tree")
    tree = synthesize_witness(encoding, result.values)
    return tree, result.values, encoding.simple
