"""Bounded brute-force search tests and ILP-checker cross-validation.

The bounded searcher is the library's only procedure covering the full
undecidable class C_K,FK; on the unary fragment it doubles as an oracle
against which the NP checker is validated, seed by seed.
"""

import pytest

from repro.checkers.bounded import bounded_consistency, enumerate_trees
from repro.checkers.consistency import check_consistency
from repro.constraints.parser import parse_constraints
from repro.constraints.satisfaction import satisfies_all
from repro.dtd.model import DTD
from repro.workloads.examples import school_constraints_d3, school_dtd_d3
from repro.workloads.generators import random_dtd, random_unary_constraints
from repro.xmltree.validate import conforms


class TestEnumerateTrees:
    def test_counts_small_language(self):
        d = DTD.build("r", {"r": "(a?, b?)", "a": "EMPTY", "b": "EMPTY"})
        shapes = list(enumerate_trees(d, max_nodes=3))
        # r, r(a), r(b), r(a,b)
        assert len(shapes) == 4

    def test_all_enumerated_conform(self, d1):
        for tree in enumerate_trees(d1, max_nodes=10):
            assert conforms(tree, d1)

    def test_budget_respected(self, d1):
        for tree in enumerate_trees(d1, max_nodes=12):
            assert tree.size() <= 12

    def test_empty_dtd_enumerates_nothing(self, d2):
        assert list(enumerate_trees(d2, max_nodes=8)) == []


class TestBoundedConsistency:
    def test_finds_multiattr_witness(self):
        witness = bounded_consistency(
            school_dtd_d3(), school_constraints_d3(), max_nodes=4
        )
        assert witness is not None
        assert conforms(witness, school_dtd_d3())
        assert satisfies_all(witness, school_constraints_d3())

    def test_unsatisfiable_within_bound_returns_none(self, d1, sigma1):
        assert bounded_consistency(d1, sigma1, max_nodes=10) is None

    def test_multiattr_keys_and_fk_interaction(self):
        # Two-attribute FK whose target key forces distinctness.
        d = DTD.build(
            "r", {"r": "(a, a, b)", "a": "EMPTY", "b": "EMPTY"},
            attrs={"a": ["x", "y"], "b": ["u", "v"]},
        )
        sigma = parse_constraints(
            "a[x,y] -> a\na[x,y] => b[u,v]"
        )
        # Two distinct 'a' rows must both appear in the single 'b' row:
        # impossible, since b can hold only one (u,v) pair.
        assert bounded_consistency(d, sigma, max_nodes=6) is None

    def test_multiattr_fk_satisfiable_case(self):
        d = DTD.build(
            "r", {"r": "(a, b*)", "a": "EMPTY", "b": "EMPTY"},
            attrs={"a": ["x", "y"], "b": ["u", "v"]},
        )
        sigma = parse_constraints("a[x,y] => b[u,v]")
        witness = bounded_consistency(d, sigma, max_nodes=4)
        assert witness is not None
        assert satisfies_all(witness, sigma)


class TestCrossValidation:
    """The NP checker and brute force agree on random tiny unary instances."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        dtd = random_dtd(seed, num_types=4, max_width=2)
        sigma = random_unary_constraints(
            seed, dtd, num_keys=1, num_fks=2
        )
        checker = check_consistency(dtd, sigma)
        if checker.consistent and checker.witness.size() <= 7:
            found = bounded_consistency(dtd, sigma, max_nodes=7)
            assert found is not None
            assert satisfies_all(found, sigma)
        if not checker.consistent:
            assert bounded_consistency(dtd, sigma, max_nodes=6) is None

    @pytest.mark.parametrize("seed", range(8))
    def test_random_with_negations(self, seed):
        dtd = random_dtd(seed + 100, num_types=3, max_width=2)
        sigma = random_unary_constraints(
            seed, dtd, num_keys=1, num_fks=1, num_neg_keys=1
        )
        checker = check_consistency(dtd, sigma)
        if not checker.consistent:
            assert bounded_consistency(dtd, sigma, max_nodes=6) is None
        elif checker.witness.size() <= 7:
            assert bounded_consistency(dtd, sigma, max_nodes=7) is not None
