"""Integration tests on the realistic bibliography workload."""

import pytest

from repro.analysis.diagnostics import diagnose
from repro.analysis.extent_bounds import extent_bounds
from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies
from repro.constraints.parser import parse_constraint
from repro.constraints.satisfaction import satisfies_all, violations
from repro.workloads.realistic import (
    bibliography_constraints,
    bibliography_document,
    bibliography_dtd,
    broken_bibliography_document,
    inconsistent_bibliography,
)
from repro.xmltree.validate import conforms


class TestDocuments:
    @pytest.mark.parametrize("seed", range(5))
    def test_generated_documents_valid(self, seed):
        dtd = bibliography_dtd()
        sigma = bibliography_constraints()
        doc = bibliography_document(seed=seed)
        assert conforms(doc, dtd)
        assert satisfies_all(doc, sigma)

    def test_broken_document_violations_pinpointed(self):
        sigma = bibliography_constraints()
        doc = broken_bibliography_document()
        violated = {str(phi) for phi in violations(doc, sigma)}
        assert "article.key -> article" in violated
        assert any("cite.dst" in phi for phi in violated)

    def test_document_sizes_scale(self):
        small = bibliography_document(num_articles=2, num_cites=0)
        large = bibliography_document(num_articles=20, num_cites=30)
        assert large.size() > small.size()


class TestStaticAnalysis:
    def test_specification_consistent(self):
        dtd = bibliography_dtd()
        sigma = bibliography_constraints()
        result = check_consistency(dtd, sigma)
        assert result.consistent
        assert satisfies_all(result.witness, sigma)

    def test_citation_inclusion_implied(self):
        dtd = bibliography_dtd()
        sigma = bibliography_constraints()
        phi = parse_constraint("cite.src <= article.key")
        assert implies(dtd, sigma, phi).implied

    def test_reverse_inclusion_not_implied(self):
        dtd = bibliography_dtd()
        sigma = bibliography_constraints()
        phi = parse_constraint("article.key <= cite.src")
        result = implies(dtd, sigma, phi)
        assert not result.implied
        assert result.counterexample is not None

    def test_extent_bounds_on_articles(self):
        dtd = bibliography_dtd()
        bounds = extent_bounds(dtd, bibliography_constraints(), "article")
        assert bounds.minimum == 1  # article+ demands one
        assert bounds.maximum is None

    def test_inconsistent_variant_detected_and_explained(self):
        dtd, sigma = inconsistent_bibliography()
        result = check_consistency(dtd, sigma)
        assert not result.consistent
        report = diagnose(dtd, sigma)
        mus = {str(phi) for phi in report.mus}
        assert mus == {
            "authorref.pid -> authorref",
            "authorref.pid => person.pid",
        }

    def test_single_author_bounds_explain_the_clash(self):
        dtd, _sigma = inconsistent_bibliography()
        person = extent_bounds(dtd, [], "person")
        authorref = extent_bounds(dtd, [], "authorref")
        assert person.maximum == 1
        assert authorref.minimum == 2
