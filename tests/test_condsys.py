"""Tests for the conditional-system solver (support branching + cuts)."""

import pytest

from repro.errors import ComplexityLimitError
from repro.ilp.condsys import (
    ConditionalSystem,
    SupportClause,
    solve_conditional_system,
)
from repro.ilp.model import LinearSystem


def _tiny_system(require_attr: bool):
    """r -> a?: ext(r) = 1 = occ_a + skip; ext(a) = occ_a.

    When ``require_attr`` the single conditional demands an attribute
    value for present ``a`` that another row forbids, so only the
    a-absent support is feasible.
    """
    base = LinearSystem()
    base.add_eq({("ext", "r"): 1}, 1)
    base.add_eq({("ext", "a"): 1, ("occ", 1, "a", "r"): -1}, 0)
    base.add_le({("occ", 1, "a", "r"): 1}, 1)
    base.add_le({("attr", "a", "l"): 1, ("ext", "a"): -1}, 0)
    if require_attr:
        base.add_le({("attr", "a", "l"): 1}, 0)  # no values allowed
    return ConditionalSystem(
        base=base,
        ext_var={"r": ("ext", "r"), "a": ("ext", "a")},
        root="r",
        element_types=("r", "a"),
        edges=((("occ", 1, "a", "r"), "r", "a"),),
        requires_if_present={"a": (("attr", "a", "l"),)},
    )


class TestSupportBranching:
    def test_conditional_satisfiable_with_presence(self):
        result, stats = solve_conditional_system(_tiny_system(require_attr=False))
        assert result.feasible
        # The answer is served either by a leaf solve or by the root LP
        # probe on the assembled system.
        assert stats.leaves_solved >= 1 or stats.bound_patch_solves >= 1

    def test_conditional_forces_absence(self):
        result, _ = solve_conditional_system(_tiny_system(require_attr=False))
        assert result.feasible
        # With the attribute forbidden, a present `a` would need
        # attr >= 1 and attr <= 0: only ext(a) = 0 remains feasible.
        result2, _ = solve_conditional_system(_tiny_system(require_attr=True))
        assert result2.feasible
        assert result2.values[("ext", "a")] == 0

    def test_forced_true_conflicts_with_forbidden_attr(self):
        condsys = _tiny_system(require_attr=True)
        forced = ConditionalSystem(
            base=condsys.base,
            ext_var=condsys.ext_var,
            root=condsys.root,
            element_types=condsys.element_types,
            edges=condsys.edges,
            requires_if_present=condsys.requires_if_present,
            forced_true=frozenset({"a"}),
        )
        result, _ = solve_conditional_system(forced)
        assert result.infeasible

    def test_forced_true_and_false_clash(self):
        condsys = _tiny_system(require_attr=False)
        clashed = ConditionalSystem(
            base=condsys.base,
            ext_var=condsys.ext_var,
            root=condsys.root,
            element_types=condsys.element_types,
            edges=condsys.edges,
            forced_true=frozenset({"a"}),
            forced_false=frozenset({"a"}),
        )
        result, _ = solve_conditional_system(clashed)
        assert result.infeasible

    def test_clause_propagation_conflict(self):
        condsys = _tiny_system(require_attr=False)
        contradictory = ConditionalSystem(
            base=condsys.base,
            ext_var=condsys.ext_var,
            root=condsys.root,
            element_types=condsys.element_types,
            edges=condsys.edges,
            clauses=(SupportClause("r", frozenset()),),  # root needs nothing available
        )
        result, _ = solve_conditional_system(contradictory)
        assert result.infeasible

    def test_node_budget_raises(self):
        # require_attr makes the maximal-support shortcut infeasible, so
        # the DFS must run — and a zero budget must be reported.  LP
        # pruning is disabled so the root probe cannot answer first.
        condsys = _tiny_system(require_attr=True)
        with pytest.raises(ComplexityLimitError):
            solve_conditional_system(condsys, max_support_nodes=0, lp_prune=False)

    def test_exact_backend_agrees(self):
        for require in (False, True):
            scipy_result, _ = solve_conditional_system(_tiny_system(require))
            exact_result, _ = solve_conditional_system(
                _tiny_system(require), backend="exact"
            )
            assert scipy_result.feasible == exact_result.feasible


class TestConnectivityCuts:
    def _cycle_system(self):
        """A self-feeding type: ext(a) = occ(a under a) with no root path.

        The pure counting system accepts ext(a) = k for any k; only the
        connectivity machinery rejects positive k. A second row forces
        ext(a) >= 1, so the whole system must come out infeasible.
        """
        base = LinearSystem()
        base.add_eq({("ext", "r"): 1}, 1)
        base.add_eq({("ext", "a"): 1, ("occ", 1, "a", "a"): -1}, 0)
        base.add_ge({("ext", "a"): 1}, 1)
        return ConditionalSystem(
            base=base,
            ext_var={"r": ("ext", "r"), "a": ("ext", "a")},
            root="r",
            element_types=("r", "a"),
            edges=((("occ", 1, "a", "a"), "a", "a"),),
        )

    def test_unreachable_cycle_rejected(self):
        result, stats = solve_conditional_system(self._cycle_system())
        assert result.infeasible

    def test_cut_loop_finds_connected_solution(self):
        # Same shape, but with a root edge available: the solver may first
        # find the disconnected solution, then the cut forces occ(a under r).
        base = LinearSystem()
        base.add_eq({("ext", "r"): 1}, 1)
        base.add_eq(
            {("ext", "a"): 1, ("occ", 1, "a", "a"): -1, ("occ", 1, "a", "r"): -1},
            0,
        )
        base.add_le({("occ", 1, "a", "r"): 1}, 1)
        base.add_ge({("ext", "a"): 1}, 2)
        condsys = ConditionalSystem(
            base=base,
            ext_var={"r": ("ext", "r"), "a": ("ext", "a")},
            root="r",
            element_types=("r", "a"),
            edges=(
                (("occ", 1, "a", "a"), "a", "a"),
                (("occ", 1, "a", "r"), "r", "a"),
            ),
        )
        result, _stats = solve_conditional_system(condsys)
        assert result.feasible
        assert result.values[("occ", 1, "a", "r")] >= 1
