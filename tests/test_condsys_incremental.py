"""Differential and unit tests for the assemble-once/bound-patch core.

The incremental path (assembled system, shared connectivity-cut pool, root
LP probe, indexed propagation) must return exactly the same feasibility
answers — with valid witnesses — as the from-scratch rebuild path across
the workload generators.  These tests are the contract that keeps the two
paths interchangeable.
"""

import pytest

from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.encoding.combined import (
    build_encoding,
    clear_encoding_cache,
    encoding_cache_stats,
)
from repro.errors import InvalidConstraintError
from repro.ilp.assembled import AssembledSystem
from repro.ilp.condsys import (
    ConditionalSystem,
    SupportClause,
    _ClauseIndex,
    _CutPool,
    _ExactTwin,
    _propagate,
    _propagate_indexed,
    CondSolveStats,
    solve_conditional_system,
)
from repro.ilp.model import LinearSystem
from repro.workloads.generators import (
    fixed_dtd_constraint_family,
    keys_only_family,
    random_dtd,
    random_unary_constraints,
    star_schema_family,
    teachers_family,
)

INCREMENTAL = CheckerConfig(want_witness=True, verify_witness=True)
REBUILD = CheckerConfig(want_witness=True, verify_witness=True, incremental=False)
INCREMENTAL_FAST = CheckerConfig(want_witness=False)
REBUILD_FAST = CheckerConfig(want_witness=False, incremental=False)


def _agree(dtd, sigma, want_witness=True):
    """Both paths must agree; witnesses are synthesized and re-verified
    (verify_witness raises on any invalid tree), proving realizability."""
    inc = INCREMENTAL if want_witness else INCREMENTAL_FAST
    reb = REBUILD if want_witness else REBUILD_FAST
    a = check_consistency(dtd, sigma, inc)
    b = check_consistency(dtd, sigma, reb)
    assert a.consistent == b.consistent, (
        f"incremental={a.consistent} rebuild={b.consistent}: {a.message!r} "
        f"vs {b.message!r}"
    )
    if a.consistent and want_witness:
        assert a.witness is not None and b.witness is not None
    return a


class TestDifferentialAcrossWorkloads:
    @pytest.mark.parametrize("dims", [1, 2, 4])
    @pytest.mark.parametrize("consistent", [True, False])
    def test_star_schema(self, dims, consistent):
        dtd, sigma = star_schema_family(dims, consistent=consistent)
        result = _agree(dtd, sigma)
        assert result.consistent == consistent

    @pytest.mark.parametrize("subjects", [2, 4, 8])
    @pytest.mark.parametrize("consistent", [True, False])
    def test_teachers(self, subjects, consistent):
        dtd, sigma = teachers_family(subjects, consistent=consistent)
        result = _agree(dtd, sigma)
        assert result.consistent == consistent

    @pytest.mark.parametrize("count", [4, 16])
    def test_fixed_dtd(self, count):
        dtd, sigma = fixed_dtd_constraint_family(count)
        assert _agree(dtd, sigma).consistent

    @pytest.mark.parametrize("scale", [4, 16])
    def test_keys_only(self, scale):
        dtd, sigma = keys_only_family(scale)
        assert _agree(dtd, sigma).consistent

    @pytest.mark.parametrize("seed", range(12))
    def test_random_specifications(self, seed):
        """Seeded random DTDs with random unary constraint mixes."""
        dtd = random_dtd(seed, num_types=5)
        sigma = random_unary_constraints(
            seed, dtd, num_keys=2, num_fks=2, num_neg_keys=seed % 2,
            num_neg_inclusions=seed % 3,
        )
        try:
            _agree(dtd, sigma)
        except InvalidConstraintError:
            pytest.skip("random draw hit a constraint outside the unary class")

    @pytest.mark.parametrize("dims", [1, 2])
    def test_exact_backend_agrees_with_incremental_scipy(self, dims):
        dtd, sigma = star_schema_family(dims, consistent=True)
        scipy_result = check_consistency(dtd, sigma, INCREMENTAL_FAST)
        exact_result = check_consistency(
            dtd, sigma, CheckerConfig(want_witness=False, backend="exact")
        )
        assert scipy_result.consistent == exact_result.consistent


def _recursive_cut_system():
    """Two self-feeding types that both need cuts to connect via the root.

    ``ext(a) = occ(a under a) + occ(a under r)`` and the same for ``b``;
    both extents are forced ``>= 2``, so the min-sum solver is drawn to
    the disconnected solution and the connectivity machinery must repair
    it for *both* types.
    """
    base = LinearSystem()
    base.add_eq({("ext", "r"): 1}, 1)
    for tau in ("a", "b"):
        base.add_eq(
            {
                ("ext", tau): 1,
                ("occ", 1, tau, tau): -1,
                ("occ", 1, tau, "r"): -1,
            },
            0,
        )
        base.add_le({("occ", 1, tau, "r"): 1}, 1)
        base.add_ge({("ext", tau): 1}, 2)
    return ConditionalSystem(
        base=base,
        ext_var={"r": ("ext", "r"), "a": ("ext", "a"), "b": ("ext", "b")},
        root="r",
        element_types=("r", "a", "b"),
        edges=(
            (("occ", 1, "a", "a"), "a", "a"),
            (("occ", 1, "a", "r"), "r", "a"),
            (("occ", 1, "b", "b"), "b", "b"),
            (("occ", 1, "b", "r"), "r", "b"),
        ),
    )


class TestCutFixpoint:
    def test_cut_fixpoint_connects_both_components(self):
        result, stats = solve_conditional_system(_recursive_cut_system())
        assert result.feasible
        assert result.values[("occ", 1, "a", "r")] >= 1
        assert result.values[("occ", 1, "b", "r")] >= 1
        assert stats.cuts_added >= 1

    def test_cut_fixpoint_agrees_with_rebuild(self):
        cs = _recursive_cut_system()
        inc, _ = solve_conditional_system(cs, incremental=True)
        reb, _ = solve_conditional_system(
            _recursive_cut_system(), incremental=False
        )
        assert inc.feasible == reb.feasible

    def test_cut_rounds_budget_raises(self):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            solve_conditional_system(
                _recursive_cut_system(), max_cut_rounds=1, lp_prune=False
            )

    def test_pool_guard_excludes_absent_supports(self):
        """A pooled cut must not refute supports where its guard is absent.

        Same shape as the recursive system, but ``a`` may also be absent
        (no ``ext(a) >= 2`` row); a cut learned while ``a`` was present
        must not block the a-absent leaf.
        """
        base = LinearSystem()
        base.add_eq({("ext", "r"): 1}, 1)
        base.add_eq(
            {("ext", "a"): 1, ("occ", 1, "a", "a"): -1}, 0
        )  # a only feeds itself: positive a can never connect
        condsys = ConditionalSystem(
            base=base,
            ext_var={"r": ("ext", "r"), "a": ("ext", "a")},
            root="r",
            element_types=("r", "a"),
            edges=((("occ", 1, "a", "a"), "a", "a"),),
        )
        result, _ = solve_conditional_system(condsys)
        assert result.feasible
        assert result.values[("ext", "a")] == 0


class TestCutPool:
    """Direct coverage of guarded activation and sharing accounting
    (previously only exercised indirectly through whole searches)."""

    def _pool(self):
        system = LinearSystem()
        system.add_le({"u": 1, "v": 1, "w": 1}, 10)
        assembled = AssembledSystem(system)
        return assembled, _CutPool(assembled)

    def test_guarded_activation_intersects_present_set(self):
        _, pool = self._pool()
        pool.add({"u": 1}, frozenset({"a", "b"}), origin_leaf=1)
        pool.add({"v": 1}, frozenset({"c"}), origin_leaf=1)
        pool.add({"w": 1}, frozenset({"b", "c"}), origin_leaf=2)
        assert pool.active_for({"a"}) == {0}
        assert pool.active_for({"b"}) == {0, 2}
        assert pool.active_for({"c"}) == {1, 2}
        assert pool.active_for({"a", "c"}) == {0, 1, 2}
        assert pool.active_for({"z"}) == set()
        assert pool.active_for(set()) == set()

    def test_shared_hits_counts_only_foreign_cuts(self):
        _, pool = self._pool()
        pool.add({"u": 1}, frozenset({"a"}), origin_leaf=1)
        pool.add({"v": 1}, frozenset({"a"}), origin_leaf=2)
        pool.add({"w": 1}, frozenset({"a"}), origin_leaf=2)
        active = pool.active_for({"a"})
        assert pool.shared_hits(active, current_leaf=1) == 2
        assert pool.shared_hits(active, current_leaf=2) == 1
        assert pool.shared_hits(active, current_leaf=3) == 3
        assert pool.shared_hits(set(), current_leaf=1) == 0

    def test_pool_len_tracks_entries(self):
        _, pool = self._pool()
        assert len(pool) == 0
        pool.add({"u": 1}, frozenset({"a"}), origin_leaf=1)
        assert len(pool) == 1

    def test_cuts_append_rows_to_assembled_system(self):
        system = LinearSystem()
        system.add_le({"u": 1}, 10)
        assembled = AssembledSystem(system)
        pool = _CutPool(assembled)
        pool.add({"u": 1}, frozenset({"a"}), origin_leaf=1, label="connect:a")
        assert assembled.num_cuts == 1
        assert assembled.cut_row(0).label == "connect:a"
        # Activation semantics flow through to solves.
        assert assembled.solve_int({}, {0}).values["u"] == 1
        assert assembled.solve_int({}, set()).values["u"] == 0

    def test_cuts_mirror_into_exact_twin_once_built(self):
        system = LinearSystem()
        system.add_le({"u": 1}, 10)
        assembled = AssembledSystem(system)
        twin = _ExactTwin(assembled)
        pool = _CutPool(assembled, twin)
        pool.add({"u": 1}, frozenset({"a"}), origin_leaf=1)
        assert not twin.built  # lazily constructed
        exact = twin.get()
        assert exact.num_cuts == 1  # pre-build cut replayed
        pool.add({"u": 1}, frozenset({"b"}), origin_leaf=2)
        assert exact.num_cuts == 2  # post-build cut mirrored
        # Same activation semantics as the float engine.
        assert exact.solve_int({}, {0}).values["u"] == 1
        assert exact.solve_int({}, {0, 1}).values["u"] == 1
        assert exact.solve_int({}, set()).values["u"] == 0

    def test_guard_sharing_observed_in_search_stats(self):
        """End-to-end: a cut learned by one leaf is active at a later
        leaf with an intersecting present set (cut_pool_hits > 0)."""
        base = LinearSystem()
        base.add_eq({("ext", "r"): 1}, 1)
        # Two self-feeding types; only `a` has a root edge, capped at 0,
        # so a-present leaves are infeasible after the cut fires, and the
        # search must descend past them re-using the pooled cut.
        for tau in ("a", "b"):
            base.add_eq(
                {
                    ("ext", tau): 1,
                    ("occ", 1, tau, tau): -1,
                    ("occ", 1, tau, "r"): -1,
                },
                0,
            )
        base.add_le({("occ", 1, "a", "r"): 1}, 0)
        base.add_ge({("ext", "a"): 1, ("ext", "b"): 1}, 1)
        condsys = ConditionalSystem(
            base=base,
            ext_var={"r": ("ext", "r"), "a": ("ext", "a"), "b": ("ext", "b")},
            root="r",
            element_types=("r", "a", "b"),
            edges=(
                (("occ", 1, "a", "a"), "a", "a"),
                (("occ", 1, "a", "r"), "r", "a"),
                (("occ", 1, "b", "b"), "b", "b"),
                (("occ", 1, "b", "r"), "r", "b"),
            ),
        )
        result, stats = solve_conditional_system(condsys, lp_prune=False)
        assert result.feasible
        assert result.values[("ext", "b")] >= 1
        assert stats.cuts_added >= 1


class TestPropagation:
    def _assignment(self, *pairs):
        assignment = {"p": None, "q": None, "s": None, "t": None}
        assignment.update(dict(pairs))
        return assignment

    @pytest.mark.parametrize(
        "clauses,start",
        [
            # Unit chain: p -> q, q -> s.
            (
                (
                    SupportClause("p", frozenset({"q"})),
                    SupportClause("q", frozenset({"s"})),
                ),
                (("p", True),),
            ),
            # Conflict: premise true, no alternatives.
            ((SupportClause("p", frozenset()),), (("p", True),)),
            # Conflict discovered through cascaded units.
            (
                (
                    SupportClause("p", frozenset({"q"})),
                    SupportClause("q", frozenset({"s", "t"})),
                ),
                (("p", True), ("s", False), ("t", False)),
            ),
            # Satisfied clause: nothing to do.
            (
                (SupportClause("p", frozenset({"q", "s"})),),
                (("p", True), ("q", True)),
            ),
            # Premise false/undecided: clause dormant.
            (
                (SupportClause("p", frozenset({"q"})),),
                (("p", False), ("q", False)),
            ),
        ],
    )
    def test_indexed_matches_rescan(self, clauses, start):
        """The worklist propagator agrees with the rescan reference on
        both the conflict verdict and the resulting assignment."""
        cs = ConditionalSystem(
            base=LinearSystem(),
            ext_var={},
            root="p",
            element_types=("p", "q", "s", "t"),
            edges=(),
            clauses=clauses,
        )
        reference = self._assignment(*start)
        indexed = self._assignment(*start)
        ok_reference = _propagate(cs, reference)
        stats = CondSolveStats()
        seeds = [sym for sym, val in indexed.items() if val is not None]
        ok_indexed = _propagate_indexed(_ClauseIndex(clauses), indexed, seeds, stats)
        assert ok_indexed == ok_reference
        if ok_indexed:
            assert indexed == reference
        assert stats.propagation_visits >= 0

    def test_propagation_conflict_refutes_system(self):
        """End-to-end: a clause conflict is reported as infeasibility."""
        base = LinearSystem()
        base.add_eq({("ext", "r"): 1}, 1)
        condsys = ConditionalSystem(
            base=base,
            ext_var={"r": ("ext", "r")},
            root="r",
            element_types=("r",),
            edges=(),
            clauses=(SupportClause("r", frozenset()),),
        )
        result, _ = solve_conditional_system(condsys)
        assert result.infeasible
        assert "propagation conflict" in result.message


class TestEncodingCache:
    def test_cache_hits_across_repeated_builds(self):
        clear_encoding_cache()
        dtd, sigma = star_schema_family(2, consistent=True)
        build_encoding(dtd, sigma)
        before = encoding_cache_stats()
        build_encoding(dtd, sigma)
        after = encoding_cache_stats()
        assert after["hits"] == before["hits"] + 1

    def test_cached_block_is_not_shared_mutably(self):
        """Mutating one encoding's base must not leak into the next."""
        dtd, sigma = star_schema_family(1, consistent=True)
        first = build_encoding(dtd, sigma)
        rows_before = first.condsys.base.num_rows
        first.condsys.base.add_ge({("ext", "fact"): 1}, 5, label="mutation")
        second = build_encoding(dtd, sigma)
        assert second.condsys.base.num_rows == rows_before

    def test_value_keyed_cache_hits_equal_dtds(self):
        clear_encoding_cache()
        dtd_a, sigma = star_schema_family(1, consistent=True)
        dtd_b, _ = star_schema_family(1, consistent=True)
        assert dtd_a is not dtd_b
        build_encoding(dtd_a, sigma)
        build_encoding(dtd_b, sigma)
        assert encoding_cache_stats()["hits"] >= 1


class TestAssembledSystem:
    def test_patched_bounds_tighten_only(self):
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 1}, 2)
        system.set_upper("y", 3)
        assembled = AssembledSystem(system)
        result = assembled.solve_int({"x": (None, 0)})
        assert result.feasible
        assert result.values["x"] == 0 and result.values["y"] == 2
        result = assembled.solve_int({"x": (None, 0), "y": (None, 1)})
        assert result.infeasible

    def test_contradictory_patch_is_infeasible(self):
        system = LinearSystem()
        system.add_ge({"x": 1}, 0)
        assembled = AssembledSystem(system)
        assert assembled.solve_int({"x": (2, 1)}).infeasible

    def test_cut_activation_toggles(self):
        system = LinearSystem()
        system.add_le({"x": 1}, 5)
        assembled = AssembledSystem(system)
        cut = assembled.add_cut({"x": 1}, 3, label="test-cut")
        active = assembled.solve_int({}, {cut})
        assert active.feasible and active.values["x"] == 3
        inactive = assembled.solve_int({}, set())
        assert inactive.feasible and inactive.values["x"] == 0

    def test_materialize_matches_patched_solve(self):
        system = LinearSystem()
        system.add_eq({"x": 1, "y": -2}, 0)
        assembled = AssembledSystem(system)
        cut = assembled.add_cut({"y": 1}, 2)
        patches = {"x": (2, None)}
        from repro.ilp.exact import solve_exact

        direct = assembled.solve_int(patches, {cut})
        materialized = solve_exact(assembled.materialize(patches, {cut}))
        assert direct.feasible and materialized.feasible
        assert not assembled.check_values(materialized.values, patches, {cut})

    def test_lp_probe_statuses(self):
        system = LinearSystem()
        system.add_ge({"x": 1}, 1)
        assembled = AssembledSystem(system)
        status, values = assembled.lp_probe({})
        assert status == "feasible" and values["x"] == 1
        status, values = assembled.lp_probe({"x": (None, 0)})
        assert status == "infeasible" and values is None
