"""Unit tests for the content-model parser."""

import pytest

from repro.errors import ParseError
from repro.regex.ast import (
    EPSILON,
    TEXT,
    Concat,
    Name,
    Optional,
    Plus,
    Star,
    Union,
)
from repro.regex.parser import parse_content_model


class TestBasicForms:
    def test_single_name(self):
        assert parse_content_model("teacher") == Name("teacher")

    def test_parenthesized_name(self):
        assert parse_content_model("(teacher)") == Name("teacher")

    def test_empty_keyword(self):
        assert parse_content_model("EMPTY") == EPSILON

    def test_pcdata(self):
        assert parse_content_model("(#PCDATA)") == TEXT
        assert parse_content_model("#PCDATA") == TEXT

    def test_sequence(self):
        assert parse_content_model("(a, b, c)") == Concat(
            (Name("a"), Name("b"), Name("c"))
        )

    def test_choice(self):
        assert parse_content_model("(a | b | c)") == Union(
            (Name("a"), Name("b"), Name("c"))
        )

    def test_postfix_operators(self):
        assert parse_content_model("(a)*") == Star(Name("a"))
        assert parse_content_model("a+") == Plus(Name("a"))
        assert parse_content_model("a?") == Optional(Name("a"))

    def test_stacked_postfix(self):
        assert parse_content_model("a*?") == Optional(Star(Name("a")))

    def test_nested_grouping(self):
        expr = parse_content_model("((a | b), c*)+")
        assert expr == Plus(
            Concat((Union((Name("a"), Name("b"))), Star(Name("c"))))
        )

    def test_mixed_content_declaration(self):
        expr = parse_content_model("(#PCDATA | em | strong)*")
        assert expr == Star(Union((TEXT, Name("em"), Name("strong"))))

    def test_names_with_dots_dashes_colons(self):
        assert parse_content_model("xs:element") == Name("xs:element")
        assert parse_content_model("foo-bar.baz") == Name("foo-bar.baz")


class TestErrors:
    def test_empty_input_rejected(self):
        with pytest.raises(ParseError):
            parse_content_model("   ")

    def test_any_rejected(self):
        with pytest.raises(ParseError, match="ANY"):
            parse_content_model("ANY")

    def test_mixed_separators_rejected(self):
        with pytest.raises(ParseError, match="mix"):
            parse_content_model("(a, b | c)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_content_model("(a, b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_content_model("a b")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_content_model("a & b")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "a",
            "EMPTY",
            "#PCDATA",
            "(a, b)",
            "(a | b)",
            "(a, b)*",
            "((a | b), c)+",
            "(a?, (b | #PCDATA)*)",
        ],
    )
    def test_parse_str_parse_fixpoint(self, source):
        once = parse_content_model(source)
        twice = parse_content_model(str(once))
        assert once == twice
