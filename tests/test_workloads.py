"""Workload generator sanity tests."""

import pytest

from repro.constraints.classes import validate_constraints
from repro.dtd.analysis import has_valid_tree
from repro.workloads.examples import (
    figure1_tree,
    school_constraints_d3,
    school_document,
    school_dtd_d3,
)
from repro.constraints.satisfaction import satisfies_all
from repro.workloads.generators import (
    chain_dtd,
    fixed_dtd_constraint_family,
    keys_only_family,
    random_dtd,
    random_unary_constraints,
    star_schema_family,
    teachers_family,
)
from repro.xmltree.validate import conforms


class TestExamples:
    def test_figure1_conforms(self, d1):
        assert conforms(figure1_tree(), d1)

    def test_school_document_valid_and_satisfying(self):
        doc = school_document()
        assert conforms(doc, school_dtd_d3())
        assert satisfies_all(doc, school_constraints_d3())


class TestStructuredFamilies:
    @pytest.mark.parametrize("depth", [1, 3, 8])
    def test_chain_scales_linearly(self, depth):
        dtd, sigma = chain_dtd(depth)
        assert has_valid_tree(dtd)
        validate_constraints(dtd, sigma)
        assert len(sigma) == depth + 1

    @pytest.mark.parametrize("scale", [1, 4])
    def test_keys_only_family_valid(self, scale):
        dtd, sigma = keys_only_family(scale)
        assert has_valid_tree(dtd)
        validate_constraints(dtd, sigma)
        assert len(sigma) == 2 * scale

    def test_teachers_family_shapes(self):
        for consistent in (True, False):
            dtd, sigma = teachers_family(3, consistent=consistent)
            assert has_valid_tree(dtd)
            validate_constraints(dtd, sigma)

    @pytest.mark.parametrize("dims", [1, 2, 5])
    def test_star_schema_valid(self, dims):
        for consistent in (True, False):
            dtd, sigma = star_schema_family(dims, consistent=consistent)
            assert has_valid_tree(dtd)
            validate_constraints(dtd, sigma)

    def test_fixed_dtd_family_has_constant_dtd(self):
        dtd_small, _ = fixed_dtd_constraint_family(1)
        dtd_large, sigma_large = fixed_dtd_constraint_family(30)
        assert dtd_small.element_types == dtd_large.element_types
        assert dtd_small.size() == dtd_large.size()
        assert len(sigma_large) == 30


class TestRandomGenerators:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_dtd_well_formed(self, seed):
        dtd = random_dtd(seed)
        # DTD.build already validates; additionally every type reachable.
        from repro.dtd.analysis import reachable_types

        assert reachable_types(dtd) == frozenset(dtd.element_types)

    def test_random_dtd_deterministic(self):
        assert str(random_dtd(3).content) == str(random_dtd(3).content)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_constraints_validate(self, seed):
        dtd = random_dtd(seed)
        sigma = random_unary_constraints(
            seed, dtd, num_keys=2, num_fks=2, num_neg_keys=1, num_neg_inclusions=1
        )
        validate_constraints(dtd, sigma)

    def test_random_constraints_empty_without_attrs(self):
        dtd = random_dtd(0, attr_prob=0.0)
        assert random_unary_constraints(0, dtd) == []
