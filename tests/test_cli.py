"""CLI tests: every subcommand, exit codes, file outputs."""

import pytest

from repro.cli import main
from repro.dtd.serializer import dtd_to_string
from repro.workloads.examples import (
    figure1_tree,
    school_document,
    school_dtd_d3,
    teachers_dtd_d1,
)
from repro.xmltree.parse import parse_xml
from repro.xmltree.serialize import tree_to_string

SIGMA1_TEXT = """
teacher.name -> teacher
subject.taught_by -> subject
subject.taught_by => teacher.name
"""

KEYS_TEXT = """
teacher.name -> teacher
subject.taught_by -> subject
"""


@pytest.fixture
def d1_file(tmp_path):
    path = tmp_path / "d1.dtd"
    path.write_text(dtd_to_string(teachers_dtd_d1()))
    return str(path)


@pytest.fixture
def sigma1_file(tmp_path):
    path = tmp_path / "sigma1.txt"
    path.write_text(SIGMA1_TEXT)
    return str(path)


@pytest.fixture
def keys_file(tmp_path):
    path = tmp_path / "keys.txt"
    path.write_text(KEYS_TEXT)
    return str(path)


class TestCheck:
    def test_inconsistent_exit_code(self, d1_file, sigma1_file, capsys):
        assert main(["check", d1_file, sigma1_file]) == 1
        assert "consistent: False" in capsys.readouterr().out

    def test_consistent_with_witness_file(self, d1_file, keys_file, tmp_path, capsys):
        witness_path = tmp_path / "witness.xml"
        code = main(
            ["check", d1_file, keys_file, "--witness", str(witness_path)]
        )
        assert code == 0
        assert "consistent: True" in capsys.readouterr().out
        tree = parse_xml(witness_path.read_text())
        assert tree.root.label == "teachers"

    def test_dtd_only(self, d1_file, capsys):
        assert main(["check", d1_file]) == 0

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["check", "/nonexistent.dtd"]) == 2

    def test_bad_dtd_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.dtd"
        bad.write_text("not a dtd at all")
        assert main(["check", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_flag_prints_solver_counters(self, d1_file, sigma1_file, capsys):
        assert main(["check", d1_file, sigma1_file, "--stats"]) == 1
        out = capsys.readouterr().out
        assert "solver stats:" in out
        assert "dfs_nodes=" in out
        assert "bound_patch_solves=" in out

    def test_profile_alias(self, d1_file, sigma1_file, capsys):
        assert main(["check", d1_file, sigma1_file, "--profile"]) == 1
        assert "solver stats:" in capsys.readouterr().out

    def test_keys_only_check_reports_no_solver_stats(self, d1_file, keys_file, capsys):
        # The keys-only fragment may answer without the ILP solver.
        assert main(["check", d1_file, keys_file, "--stats"]) == 0
        assert "solver stats:" in capsys.readouterr().out

    def test_exact_backend_flag(self, d1_file, sigma1_file, capsys):
        assert main(
            ["check", d1_file, sigma1_file, "--backend", "exact", "--stats"]
        ) == 1
        out = capsys.readouterr().out
        assert "consistent: False" in out
        assert "exact_pivots=" in out

    def test_exact_cold_ablation_agrees(self, d1_file, sigma1_file, capsys):
        warm = main(["check", d1_file, sigma1_file, "--backend", "exact"])
        cold = main(
            ["check", d1_file, sigma1_file, "--backend", "exact", "--cold"]
        )
        assert warm == cold == 1


class TestValidate:
    def test_valid_document(self, d1_file, keys_file, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        tree = figure1_tree()
        # Make taught_by values distinct so the subject key holds.
        subjects = tree.ext("subject")
        subjects[0].attrs["taught_by"] = "Joe"
        subjects[1].attrs["taught_by"] = "Joe2"
        doc.write_text(tree_to_string(tree))
        # Figure-1 variant violates the FK (Joe2 is no teacher), so use keys only.
        assert main(["validate", d1_file, str(doc), keys_file]) == 0

    def test_figure1_violates_sigma1(self, d1_file, sigma1_file, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text(tree_to_string(figure1_tree()))
        assert main(["validate", d1_file, str(doc), sigma1_file]) == 1
        out = capsys.readouterr().out
        assert "conforms to DTD: True" in out
        assert "violated" in out

    def test_nonconforming_document(self, d1_file, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text("<teachers/>")
        assert main(["validate", d1_file, str(doc)]) == 1

    def test_school_document(self, tmp_path):
        dtd_path = tmp_path / "d3.dtd"
        dtd_path.write_text(dtd_to_string(school_dtd_d3()))
        doc = tmp_path / "school.xml"
        doc.write_text(tree_to_string(school_document()))
        assert main(["validate", str(dtd_path), str(doc)]) == 0


class TestImplies:
    def test_implied(self, d1_file, sigma1_file, capsys):
        code = main(
            ["implies", d1_file, sigma1_file, "subject.taught_by <= teacher.name"]
        )
        assert code == 0
        assert "implied: True" in capsys.readouterr().out

    def test_not_implied_prints_counterexample(self, d1_file, keys_file, capsys):
        code = main(
            ["implies", d1_file, keys_file, "subject.taught_by <= teacher.name"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "implied: False" in out
        assert "counterexample" in out

    def test_stats_flag_on_implies(self, d1_file, sigma1_file, capsys):
        code = main(
            [
                "implies", d1_file, sigma1_file,
                "subject.taught_by <= teacher.name", "--stats",
            ]
        )
        assert code == 0
        assert "solver stats:" in capsys.readouterr().out

    def test_counterexample_to_file(self, d1_file, keys_file, tmp_path, capsys):
        target = tmp_path / "cx.xml"
        code = main(
            [
                "implies", d1_file, keys_file,
                "subject.taught_by <= teacher.name",
                "--counterexample", str(target),
            ]
        )
        assert code == 1
        assert parse_xml(target.read_text()).root.label == "teachers"


class TestDiagnoseAndBounds:
    def test_diagnose_inconsistent(self, d1_file, sigma1_file, capsys):
        assert main(["diagnose", d1_file, sigma1_file]) == 1
        out = capsys.readouterr().out
        assert "INCONSISTENT" in out
        assert "subject.taught_by => teacher.name" in out

    def test_diagnose_consistent(self, d1_file, keys_file, capsys):
        assert main(["diagnose", d1_file, keys_file]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_bounds(self, d1_file, capsys):
        assert main(["bounds", d1_file, "--type", "subject"]) == 0
        out = capsys.readouterr().out
        assert "|ext(subject)| in [2, unbounded]" in out

    def test_bounds_inconsistent(self, d1_file, sigma1_file, capsys):
        code = main(
            ["bounds", d1_file, sigma1_file, "--type", "subject"]
        )
        assert code == 1
