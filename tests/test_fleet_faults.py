"""Fleet chaos: backend death, dropped connections, crashing workers.

The router's fault contract (DESIGN.md section 11): a backend that dies
— SIGKILL mid-wave, a connection dropped by the ``conn.drop`` fault
point, a solver worker crashing under ``worker.kill`` — must never
change what a client observes beyond latency.  In-flight requests are
idempotent and replay; a lost backend's ring segment reroutes to the
survivors; verdicts stay pinned to the single-backend answer; and no
request is dropped or answered twice.

Backends here are real ``repro serve`` subprocesses
(:func:`~repro.service.fleet.spawn_backends`), faults armed through each
victim's environment so only it misbehaves.  The router runs in-process
where its counters can be asserted exactly.
"""

import asyncio
import json
import signal
import threading
import time

import pytest

from repro.dtd.serializer import dtd_to_string
from repro.ilp.condsys import WorkerPool
from repro.service.fleet import FleetRouter, spawn_backends
from repro.service.registry import SessionRegistry
from repro.service.server import CheckingServer
from repro.workloads.generators import wide_flat_dtd

needs_fork = pytest.mark.skipif(
    not WorkerPool.available(), reason="worker pool needs fork start method"
)

#: The branchy chaos instance (same family as tests/test_service_faults):
#: range constraints force the ILP path, so ``solve.delay`` has DFS nodes
#: to stretch and a mid-wave kill has work to land in.
_ACTIVE = 3


def _branchy_texts() -> tuple[str, str]:
    dtd = wide_flat_dtd(_ACTIVE + 2)
    chain = [f"t{i}.x <= t{(i + 1) % _ACTIVE}.x" for i in range(_ACTIVE)]
    return dtd_to_string(dtd), "\n".join(chain)


def _batch_request(request_id="batch") -> dict:
    dtd_text, sigma_text = _branchy_texts()
    phis = []
    for i in range(_ACTIVE):
        for j in range(_ACTIVE):
            if i != j:
                phis.append(f"t{i}.x <= t{j}.x")
    return {
        "id": request_id,
        "op": "implies_all",
        "dtd": dtd_text,
        "constraints": sigma_text,
        "phis": phis,
    }


def _line_exchange(address, requests) -> list:
    async def run():
        reader, writer = await asyncio.open_connection(*address)
        lines = []
        for request in requests:
            writer.write((json.dumps(request) + "\n").encode("utf-8"))
            await writer.drain()
            lines.append(await reader.readline())
        writer.close()
        return lines

    return asyncio.run(run())


def _burst_exchange(address, requests) -> list:
    """Send every request before reading any response (overlap at the
    router); returns raw response lines in arrival order."""

    async def run():
        reader, writer = await asyncio.open_connection(*address)
        for request in requests:
            writer.write((json.dumps(request) + "\n").encode("utf-8"))
        await writer.drain()
        lines = []
        for _ in requests:
            line = await reader.readline()
            if not line:
                break
            lines.append(line)
        writer.close()
        return lines

    return asyncio.run(run())


def _reference_bytes(requests) -> list:
    """The pinned answers: a fresh in-process single server."""
    reference = CheckingServer(SessionRegistry())
    reference.start_background()
    try:
        return _line_exchange(reference.address, requests)
    finally:
        reference.close()


def _cleanup(processes) -> None:
    for proc in processes:
        proc.kill()
    for proc in processes:
        proc.wait(timeout=10.0)


def test_conn_drop_is_replayed_not_surfaced():
    """``conn.drop*1`` on a backend closes one answered connection
    without writing the response; the router replays the idempotent
    request on a fresh connection and the client sees the exact
    single-server bytes, exactly once."""
    procs, specs = spawn_backends(1, env={"REPRO_FAULTS": "conn.drop*1"})
    try:
        router = FleetRouter(specs)
        router.start_background()
        try:
            request = _batch_request("dropped")
            [ours] = _line_exchange(router.address, [request])
            [pinned] = _reference_bytes([request])
            assert ours == pinned
            assert router.stats.replays >= 1
            assert router.stats.reconnects >= 1
            assert router.stats.backends_lost == 0
            assert len(router.ring) == 1
        finally:
            router.close()
    finally:
        _cleanup(procs)


def test_backend_sigkill_mid_wave_reroutes_with_pinned_bytes():
    """SIGKILL one of three backends while a fanned batch is in flight:
    its chunks replay onto the survivors, the ring drops to two, and the
    merged answer — plus every later request — still carries the
    single-server bytes."""
    victim_procs, victim_specs = spawn_backends(
        1, env={"REPRO_FAULTS": "solve.delay=0.05"}
    )
    procs, specs = spawn_backends(2)
    procs += victim_procs
    try:
        router = FleetRouter(specs + victim_specs, wave_chunk=1)
        router.start_background()
        try:
            batch = _batch_request("mid-wave")
            follow_up = _batch_request("after-kill")
            result: dict = {}

            def client():
                result["lines"] = _line_exchange(router.address, [batch])

            thread = threading.Thread(target=client)
            thread.start()
            # Land the kill while the victim's slow chunks are in
            # flight (its solve.delay stretches every DFS node).
            time.sleep(0.3)
            victim_procs[0].send_signal(signal.SIGKILL)
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "batch never completed after the kill"

            [pinned_batch] = _reference_bytes([batch])
            assert result["lines"] == [pinned_batch]

            # The next fan-out touches every ring member: the dead
            # backend is detected (if the kill landed between waves)
            # and the fleet answers from the survivors.
            [ours] = _line_exchange(router.address, [follow_up])
            [pinned] = _reference_bytes([follow_up])
            assert ours == pinned
            assert router.stats.backends_lost == 1
            assert router.stats.reroutes >= 1
            assert len(router.ring) == 2
        finally:
            router.close()
    finally:
        _cleanup(procs)


def test_kill_under_concurrent_load_answers_every_request_exactly_once():
    """Distinct specs spread across the ring; the victim dies while
    requests overlap.  Every request id is answered exactly once, every
    answer is ok=true, and each equals the single-server bytes."""
    victim_procs, victim_specs = spawn_backends(
        1, env={"REPRO_FAULTS": "solve.delay=0.05"}
    )
    procs, specs = spawn_backends(2)
    procs += victim_procs
    try:
        router = FleetRouter(specs + victim_specs)
        router.start_background()
        try:
            dtd_text, sigma_text = _branchy_texts()
            requests = []
            for index in range(8):
                # Distinct spec per request -> distinct fingerprint ->
                # the ring spreads them across all three backends.
                requests.append(
                    {
                        "id": f"load-{index}",
                        "op": "implies",
                        "dtd": dtd_to_string(wide_flat_dtd(_ACTIVE + 2 + index)),
                        "constraints": sigma_text,
                        "phi": "t0.x <= t2.x",
                    }
                )
            result: dict = {}

            def client():
                result["lines"] = _burst_exchange(router.address, requests)

            thread = threading.Thread(target=client)
            thread.start()
            time.sleep(0.2)
            victim_procs[0].send_signal(signal.SIGKILL)
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "burst never completed after the kill"

            lines = result["lines"]
            assert len(lines) == len(requests), "a request was dropped"
            answered = [json.loads(line)["id"] for line in lines]
            assert sorted(answered) == sorted(r["id"] for r in requests), (
                "an id was dropped or double-answered"
            )
            for line in lines:
                assert json.loads(line)["ok"] is True, line
            pinned = _reference_bytes(requests)
            ours_by_id = {json.loads(line)["id"]: line for line in lines}
            for request, expected in zip(requests, pinned):
                assert ours_by_id[request["id"]] == expected, request["id"]
            assert router.stats.backends_lost <= 1
        finally:
            router.close()
    finally:
        _cleanup(procs)


@needs_fork
def test_backend_worker_crash_is_invisible_through_the_fleet(tmp_path):
    """``worker.kill*1`` crashes one solver worker *inside* a backend;
    the backend's pool respawns it and the fleet's verdict matches an
    unfaulted run — the crash surfaces only in the solver counters.

    The token file is seeded here and shared via ``REPRO_FAULTS_DIR``
    so the fault fires exactly once across the backend's whole fork
    tree (parent, workers, respawns)."""
    (tmp_path / "worker.kill.0").touch()
    procs, specs = spawn_backends(
        1,
        env={
            "REPRO_FAULTS": "worker.kill*1",
            "REPRO_FAULTS_DIR": str(tmp_path),
        },
    )
    try:
        router = FleetRouter(specs)
        router.start_background()
        try:
            dtd_text, sigma_text = _branchy_texts()
            # The unsatisfiable extra constraint is what makes the ILP
            # branchy enough for the parallel pool to engage at jobs=2.
            sigma_text += "\nt0.x !<= t1.x"
            request = {
                "id": "crashy",
                "op": "check",
                "dtd": dtd_text,
                "constraints": sigma_text,
                "config": {
                    "jobs": 2,
                    "backend": "exact",
                    "lp_prune": False,
                    "want_witness": False,
                },
            }
            [raw] = _line_exchange(router.address, [request])
            payload = json.loads(raw)
            assert payload["ok"], payload
            stats = payload["result"]["stats"]
            assert stats["workers_crashed"] == 1
            assert stats["workers_respawned"] == 1
            assert not stats["parallel_degraded"]
            [pinned_raw] = _reference_bytes([request])
            pinned = json.loads(pinned_raw)
            assert (
                payload["result"]["consistent"]
                == pinned["result"]["consistent"]
            )
            assert router.stats.backends_lost == 0
        finally:
            router.close()
    finally:
        _cleanup(procs)


def test_all_backends_dead_answers_structured_error_not_silence():
    """With every backend gone the router still answers: a structured
    error naming the empty fleet, not a hang or a dropped connection."""
    procs, specs = spawn_backends(1)
    try:
        router = FleetRouter(specs)
        router.start_background()
        try:
            _cleanup(procs)
            procs = []
            request = _batch_request("orphan")
            [raw] = _line_exchange(router.address, [request])
            payload = json.loads(raw)
            assert payload["ok"] is False
            assert "no live backends" in payload["error"]["message"]
            assert router.stats.backends_lost == 1
            assert len(router.ring) == 0
        finally:
            router.close()
    finally:
        _cleanup(procs)
