"""Chaos suite: armed faults, structured answers, identical verdicts.

Every hardening claim of DESIGN.md section 9 is exercised by arming its
failure through :mod:`repro.service.faults` and asserting the recovery
story end to end:

* ``worker.kill`` — the pool detects the dead worker by exitcode,
  requeues its task and respawns; a kill *storm* exhausts the respawn
  budget and degrades to sequential — in both cases the verdict equals
  the fault-free ``jobs=1`` baseline;
* deadlines — expired requests answer ``budget_exceeded`` (pre-queue
  and mid-solve via ``solve.delay``), never wedging the drainer;
* overload (``drain.delay`` + a tiny in-flight cap) — shed requests
  answer ``overloaded`` with a ``retry_after`` hint, admitted ones
  still answer correctly, and *every* request gets a structured answer;
* ``conn.drop`` — a dropped connection loses its bytes, not the server;
* ``persist.corrupt`` — a corrupted snapshot is a cold start, and the
  cold session still answers correctly.
"""

import asyncio
import json
import os
from dataclasses import replace

import pytest

from repro.budget import Deadline, deadline_scope
from repro.checkers.config import CheckerConfig
from repro.checkers.consistency import check_consistency
from repro.constraints.parser import parse_constraints
from repro.dtd.serializer import dtd_to_string
from repro.errors import BudgetExceededError
from repro.ilp.condsys import WorkerPool
from repro.service import faults
from repro.service.faults import FaultRegistry, parse_faults
from repro.service.registry import SessionRegistry
from repro.service.server import CheckingServer
from repro.workloads.generators import wide_flat_dtd

needs_fork = pytest.mark.skipif(
    not WorkerPool.available(), reason="worker pool needs fork start method"
)

#: The differential-fuzz branchy instance: its support search genuinely
#: branches (certified pipeline, LP pruning off), so DFS nodes — and with
#: ``jobs=2`` real worker processes — are guaranteed to exist for faults
#: to hit.
_ACTIVE = 3
PARALLEL = CheckerConfig(
    want_witness=False, backend="exact", lp_prune=False, jobs=2
)
SEQUENTIAL = replace(PARALLEL, jobs=1)
_CONFIG_WIRE = {
    "want_witness": False,
    "backend": "exact",
    "lp_prune": False,
    "jobs": 2,
}


def _branchy_spec():
    dtd = wide_flat_dtd(_ACTIVE + 2)
    chain = [f"t{i}.x <= t{(i + 1) % _ACTIVE}.x" for i in range(_ACTIVE)]
    sigma = parse_constraints("\n".join(chain + ["t0.x !<= t1.x"]))
    return dtd, sigma


@pytest.fixture
def arm():
    """Arm fault points for one test; always disarm afterwards."""
    try:
        yield faults.install
    finally:
        faults.reset()


async def _roundtrip(host, port, requests):
    reader, writer = await asyncio.open_connection(host, port)
    for request in requests:
        writer.write((json.dumps(request) + "\n").encode())
    await writer.drain()
    responses = []
    for _ in requests:
        line = await reader.readline()
        if not line:
            break
        responses.append(json.loads(line))
    writer.close()
    return responses


# ---------------------------------------------------------------------------
# The registry itself
# ---------------------------------------------------------------------------


def test_fault_grammar_round_trips():
    specs = parse_faults("worker.kill*2, drain.delay=0.25, conn.drop")
    assert specs["worker.kill"].times == 2
    assert specs["worker.kill"].value is None
    assert specs["drain.delay"].times is None
    assert specs["drain.delay"].value == 0.25
    assert specs["conn.drop"].times is None
    assert parse_faults("solve.delay=0.1*3")["solve.delay"] == parse_faults(
        "solve.delay=0.1*3"
    )["solve.delay"]


def test_fault_grammar_rejects_junk():
    with pytest.raises(ValueError):
        parse_faults("worker.kill*-1")
    with pytest.raises(ValueError):
        parse_faults("worker.kill*soon")
    with pytest.raises(ValueError):
        parse_faults("=0.5")


def test_limited_faults_fire_exactly_n_times_across_registries(tmp_path):
    """Token files make ``*N`` counts global to every process sharing the
    directory: two registries (standing in for parent + forked child)
    jointly consume exactly N firings."""
    token_dir = str(tmp_path / "tokens")
    specs = parse_faults("worker.kill*3")
    parent = FaultRegistry(specs, token_dir=token_dir, create_tokens=True)
    child = FaultRegistry(specs, token_dir=token_dir, create_tokens=False)
    fired = sum(
        1
        for registry in (parent, child, parent, child, parent, child)
        if registry.fire("worker.kill") is not None
    )
    assert fired == 3


def test_unarmed_probes_are_noops():
    faults.reset()
    assert faults.fault_active("worker.kill") is False
    assert faults.fault_seconds("drain.delay") is None


# ---------------------------------------------------------------------------
# Worker-crash recovery (DESIGN.md section 9: detect, requeue, respawn)
# ---------------------------------------------------------------------------


@needs_fork
def test_single_worker_kill_recovers_without_degrading(arm):
    dtd, sigma = _branchy_spec()
    arm("worker.kill*1")
    result = check_consistency(dtd, sigma, PARALLEL)
    faults.reset()
    baseline = check_consistency(dtd, sigma, SEQUENTIAL)
    assert result.consistent == baseline.consistent
    assert result.stats["workers_crashed"] == 1
    assert result.stats["workers_respawned"] == 1
    assert result.stats["tasks_requeued"] >= 1
    assert not result.stats["parallel_degraded"], (
        "one crash must be absorbed by respawn, not degrade the run"
    )


@needs_fork
def test_kill_storm_degrades_to_sequential_with_identical_verdict(arm):
    """When every worker (and every respawn) dies, the run falls back to
    the sequential path and still returns the jobs=1 verdict."""
    dtd, sigma = _branchy_spec()
    arm("worker.kill*100")
    result = check_consistency(dtd, sigma, PARALLEL)
    faults.reset()
    baseline = check_consistency(dtd, sigma, SEQUENTIAL)
    assert result.consistent == baseline.consistent
    assert result.stats["parallel_degraded"] is True
    assert result.stats["workers_crashed"] >= 2


# ---------------------------------------------------------------------------
# Deadlines: cooperative cancellation, pre-queue and mid-solve
# ---------------------------------------------------------------------------


def test_mid_solve_deadline_cancels_cooperatively(arm):
    """``solve.delay`` stretches every DFS node past the budget: the solver
    notices at its next check and raises instead of running on."""
    dtd, sigma = _branchy_spec()
    arm("solve.delay=0.05")
    with pytest.raises(BudgetExceededError):
        with deadline_scope(Deadline.after(0.02)):
            check_consistency(dtd, sigma, SEQUENTIAL)


def test_expired_request_answers_budget_exceeded_through_server():
    dtd, sigma = _branchy_spec()
    server = CheckingServer(SessionRegistry())
    host, port = server.start_background()
    try:
        responses = asyncio.run(
            _roundtrip(
                host,
                port,
                [
                    {
                        "id": "late",
                        "op": "check",
                        "dtd": dtd_to_string(dtd),
                        "constraints": "\n".join(str(phi) for phi in sigma),
                        "deadline": 0.0,
                    },
                    {
                        "id": "fine",
                        "op": "open",
                        "dtd": dtd_to_string(dtd),
                        "constraints": "\n".join(str(phi) for phi in sigma),
                    },
                ],
            )
        )
        by_id = {r["id"]: r for r in responses}
        assert by_id["late"]["ok"] is False
        assert by_id["late"]["error"]["type"] == "budget_exceeded"
        assert by_id["fine"]["ok"] is True, (
            "an expired request must not wedge the drainer"
        )
        assert server.stats_payload()["server"]["deadline_expired"] == 1
    finally:
        server.close()


# ---------------------------------------------------------------------------
# Overload: shed with structure, answer everything
# ---------------------------------------------------------------------------


def test_overload_sheds_with_retry_after_and_answers_everything(arm):
    """A slow drainer (``drain.delay``) plus a tiny in-flight cap forces
    shedding; every request still gets exactly one structured answer."""
    dtd, sigma = _branchy_spec()
    dtd_text = dtd_to_string(dtd)
    sigma_text = "\n".join(str(phi) for phi in sigma)
    arm("drain.delay=0.2*10")
    server = CheckingServer(SessionRegistry(), max_inflight=2)
    host, port = server.start_background()
    try:
        requests = [
            {
                "id": index,
                "op": "implies",
                "dtd": dtd_text,
                "constraints": sigma_text,
                "phi": "t0.x <= t1.x",
            }
            for index in range(8)
        ]
        responses = asyncio.run(_roundtrip(host, port, requests))
        assert len(responses) == len(requests), (
            "under overload every request still gets an answer"
        )
        shed = [
            r
            for r in responses
            if not r["ok"] and r["error"]["type"] == "overloaded"
        ]
        answered = [r for r in responses if r["ok"]]
        assert shed, "the in-flight cap never shed"
        assert answered, "shedding must not starve admitted requests"
        assert len(shed) + len(answered) == len(requests)
        for response in shed:
            assert response["error"]["retry_after"] > 0
        for response in answered:
            assert response["result"]["implied"] is True
        stats = server.stats_payload()["server"]
        assert stats["requests_shed"] == len(shed)
        assert stats["errors"] == 0, "sheds are load feedback, not errors"
    finally:
        server.close()


# ---------------------------------------------------------------------------
# Dropped connections and corrupted snapshots
# ---------------------------------------------------------------------------


def test_dropped_connection_loses_bytes_not_the_server(arm):
    dtd, sigma = _branchy_spec()
    dtd_text = dtd_to_string(dtd)
    sigma_text = "\n".join(str(phi) for phi in sigma)
    arm("conn.drop*1")
    server = CheckingServer(SessionRegistry())
    host, port = server.start_background()

    async def drop_then_retry():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            (
                json.dumps(
                    {
                        "id": 1,
                        "op": "open",
                        "dtd": dtd_text,
                        "constraints": sigma_text,
                    }
                )
                + "\n"
            ).encode()
        )
        await writer.drain()
        line = await reader.readline()
        writer.close()
        assert not line, "the armed fault should have dropped the connection"
        # The client's recovery story: reconnect and retry.
        return await _roundtrip(
            host,
            port,
            [
                {
                    "id": 2,
                    "op": "open",
                    "dtd": dtd_text,
                    "constraints": sigma_text,
                }
            ],
        )

    try:
        responses = asyncio.run(drop_then_retry())
        assert responses[0]["ok"] is True
    finally:
        server.close()


def test_dropped_http_connection_loses_bytes_not_the_server(arm):
    """The same ``conn.drop`` story over the HTTP front end: the armed
    drop closes the socket before the response bytes, and a retry on a
    fresh connection answers normally."""
    import http.client

    from repro.service.http import HTTPFrontend

    dtd, sigma = _branchy_spec()
    request = {
        "id": 1,
        "op": "open",
        "dtd": dtd_to_string(dtd),
        "constraints": "\n".join(str(phi) for phi in sigma),
    }
    server = CheckingServer(SessionRegistry())
    front = HTTPFrontend(server)
    host, port = front.start_background()
    arm("conn.drop*1")
    try:
        first = http.client.HTTPConnection(host, port, timeout=10)
        try:
            first.request("POST", "/v1/open", body=json.dumps(request))
            with pytest.raises((ConnectionError, http.client.BadStatusLine)):
                first.getresponse()
        finally:
            first.close()
        # The client's recovery story: reconnect and retry.
        retry = http.client.HTTPConnection(host, port, timeout=10)
        try:
            retry.request(
                "POST", "/v1/open", body=json.dumps({**request, "id": 2})
            )
            response = retry.getresponse()
            assert response.status == 200
            payload = json.loads(response.read())
            assert payload["ok"] is True
        finally:
            retry.close()
    finally:
        faults.reset()
        front.close()


def test_corrupt_snapshot_is_a_cold_start_that_still_answers(arm, tmp_path):
    from repro.service.persist import load_snapshot, save_snapshot

    dtd, sigma = _branchy_spec()
    registry = SessionRegistry()
    session = registry.session_for(
        dtd_to_string(dtd), "\n".join(str(phi) for phi in sigma)
    )
    session.implies("t0.x <= t1.x", None)
    state = str(tmp_path / "snapshot.json")
    arm("persist.corrupt")
    save_snapshot(registry, state)
    faults.reset()
    assert os.path.exists(state)
    cold = SessionRegistry()
    assert load_snapshot(cold, state) == 0, (
        "a corrupt snapshot restores nothing (and raises nothing)"
    )
    # The cold registry still answers the same question correctly.
    fresh = cold.session_for(
        dtd_to_string(dtd), "\n".join(str(phi) for phi in sigma)
    )
    assert fresh.implies("t0.x <= t1.x", None)["implied"] is True


# ---------------------------------------------------------------------------
# Mixed faults through the full service: the headline invariant
# ---------------------------------------------------------------------------


@needs_fork
def test_faulted_service_still_matches_fault_free_verdicts(arm):
    """Worker kills and drain delays at once: every request answers, and
    the verdicts equal the fault-free sequential baseline."""
    dtd, sigma = _branchy_spec()
    dtd_text = dtd_to_string(dtd)
    sigma_text = "\n".join(str(phi) for phi in sigma)
    baseline = check_consistency(dtd, sigma, SEQUENTIAL)
    arm("worker.kill*1,drain.delay=0.02*2")
    server = CheckingServer(SessionRegistry())
    host, port = server.start_background()
    try:
        responses = asyncio.run(
            _roundtrip(
                host,
                port,
                [
                    {
                        "id": index,
                        "op": "check",
                        "dtd": dtd_text,
                        "constraints": sigma_text,
                        "config": _CONFIG_WIRE,
                    }
                    for index in range(3)
                ],
            )
        )
        assert len(responses) == 3
        for response in responses:
            assert response["ok"] is True, response
            assert (
                response["result"]["consistent"] == baseline.consistent
            ), "faulted verdict diverged from the fault-free baseline"
    finally:
        server.close()
