"""Golden-file round-trip for the metrics surface (ISSUE 8).

The contract under test: every metric documented in
:data:`repro.service.metrics.METRICS` is present in a ``GET /metrics``
scrape, carries its documented type, and — for counters — is monotone
across scrapes under load (including across session eviction, the case
the retired-counter accumulation exists for).  The scrape is re-parsed
with a tiny test-side exposition parser, so a formatting regression
(missing ``# TYPE``, label syntax, counter suffix) fails here rather
than in a real Prometheus server.
"""

from __future__ import annotations

import http.client
from pathlib import Path

import pytest

from repro.service.client import ServiceClient
from repro.service.http import HTTPFrontend
from repro.service.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM_BUCKETS,
    METRICS,
    AdaptiveJobsController,
    LatencyHistogram,
    StatsCollector,
    render_prometheus,
)
from repro.service.registry import SessionRegistry
from repro.service.server import CheckingServer
from repro.ilp.condsys import effective_parallelism

GOLDEN = Path(__file__).parent / "data" / "metrics_golden.prom"

DTD = """
<!ELEMENT db (item*, extra*)>
<!ELEMENT item EMPTY>
<!ELEMENT extra EMPTY>
<!ATTLIST item id CDATA #REQUIRED>
<!ATTLIST extra ref CDATA #REQUIRED>
"""
SIGMA = "item.id -> item\nextra.ref <= item.id"


# -- the tiny exposition parser ------------------------------------------


def parse_exposition(text: str):
    """``(types, samples)``: metric name -> type, and
    ``(name, sorted-label-tuple) -> float`` for every sample line."""
    types: dict[str, str] = {}
    samples: dict[tuple, float] = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            types[name] = kind
        elif line.startswith("#") or not line:
            continue
        else:
            name_part, value = line.rsplit(" ", 1)
            if "{" in name_part:
                name, raw = name_part[:-1].split("{", 1)
                labels = tuple(sorted(part.strip() for part in raw.split(",")))
            else:
                name, labels = name_part, ()
            samples[(name, labels)] = float(value)
    return types, samples


def scrape(address) -> str:
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        return response.read().decode("utf-8")
    finally:
        conn.close()


def apply_load(address, round_number: int) -> int:
    """One load round: a coalescible implies burst plus the other ops.

    Returns the number of session-op requests sent (each lands in the
    per-op latency histograms exactly once).
    """
    del round_number  # repeats replay from cache; the wire counters still move
    with ServiceClient(*address) as client:
        burst = [
            {
                "op": "implies",
                "dtd": DTD,
                "constraints": SIGMA,
                "phi": ["item.id -> item", "extra.ref <= item.id"][i % 2],
            }
            for i in range(4)
        ]
        responses = client.call_many(burst)
        assert all(r["ok"] for r in responses), responses
        single = [
            {"op": "check", "dtd": DTD, "constraints": SIGMA},
            {"op": "validate", "dtd": DTD, "constraints": SIGMA,
             "document": '<db><item id="a"/></db>'},
            {"op": "open", "dtd": DTD, "constraints": SIGMA},
        ]
        for request in single:
            assert client.call(request)["ok"]
    return len(burst) + len(single)


@pytest.fixture
def served():
    server = CheckingServer(SessionRegistry(max_sessions=4))
    front = HTTPFrontend(server)
    address = front.start_background(line_port=0)
    try:
        yield front, address, server.address
    finally:
        front.close()


# -- the golden file ------------------------------------------------------


def test_zero_state_render_matches_golden_file():
    """The empty-collector exposition is byte-stable (names, types, help
    text, ordering); regenerate with
    ``python -c "from repro.service.metrics import render_prometheus;
    print(render_prometheus({}), end='')" > tests/data/metrics_golden.prom``.
    """
    assert render_prometheus({}) == GOLDEN.read_text()


def test_golden_file_documents_every_metric():
    types, samples = parse_exposition(GOLDEN.read_text())
    for spec in METRICS.values():
        assert types.get(spec.name) == spec.kind, spec.key
        assert (spec.name, ()) in samples, spec.key


# -- the live round trip --------------------------------------------------


def test_every_documented_metric_present_typed_and_monotone(served):
    front, address, line_address = served
    sent = apply_load(line_address, 1)
    first_types, first = parse_exposition(scrape(address))
    apply_load(line_address, 2)
    second_types, second = parse_exposition(scrape(address))

    for spec in METRICS.values():
        assert first_types.get(spec.name) == spec.kind, spec.key
        assert (spec.name, ()) in first, f"{spec.key} missing from scrape"
        if spec.kind == COUNTER:
            assert second[(spec.name, ())] >= first[(spec.name, ())], spec.key
    assert set(first_types.values()) <= {COUNTER, GAUGE, "histogram"}

    # Spot-check the load actually moved the counters the ISSUE names.
    assert second[("repro_server_requests_total", ())] > first[
        ("repro_server_requests_total", ())
    ]
    assert first[("repro_registry_session_hits_total", ())] >= 0
    assert second[("repro_session_requests_total", ())] >= sent


def test_op_latency_histogram_counts_requests(served):
    front, address, line_address = served
    apply_load(line_address, 1)
    types, samples = parse_exposition(scrape(address))
    assert types["repro_request_latency_seconds"] == "histogram"
    implies_count = samples[("repro_request_latency_seconds_count", ('op="implies"',))]
    assert implies_count == 4.0
    # Buckets are cumulative and end at +Inf == _count.
    inf = samples[
        ("repro_request_latency_seconds_bucket", ('le="+Inf"', 'op="implies"'))
    ]
    assert inf == implies_count
    running = 0.0
    for bound in HISTOGRAM_BUCKETS:
        rendered = int(bound) if bound == int(bound) else bound
        le = f'le="{rendered}"'
        cumulative = samples[
            ("repro_request_latency_seconds_bucket", (le, 'op="implies"'))
        ]
        assert cumulative >= running
        running = cumulative
    assert samples[("repro_request_latency_seconds_sum", ('op="implies"',))] >= 0


def test_stats_op_counters_are_namespaced_and_match_scrape(served):
    front, address, line_address = served
    apply_load(line_address, 1)
    with ServiceClient(*line_address) as client:
        payload = client.call({"op": "stats"})["result"]
    counters = payload["counters"]
    assert counters, "stats op lost its namespaced counters"
    prefixes = {key.split(".", 1)[0] for key in counters}
    assert prefixes <= {"server", "registry", "session", "pool"}, prefixes
    # No flat-merge shadowing: the nested legacy sections carry a
    # 'sessions'/'session_hits' collision surface; the flat view cannot.
    assert all("." in key for key in counters)
    # The scrape and the stats op read the same snapshot: keys that the
    # stats op itself does not advance must agree exactly.
    _, samples = parse_exposition(scrape(address))
    for key in ("session.requests", "session.cache_hits", "registry.sessions_opened"):
        name = "repro_" + key.replace(".", "_") + "_total"
        assert samples[(name, ())] == counters[key], key


def test_session_counters_stay_monotone_across_eviction():
    server = CheckingServer(SessionRegistry(max_sessions=1))
    front = HTTPFrontend(server)
    address = front.start_background(line_port=0)
    try:
        specs = [
            (DTD, SIGMA),
            ("<!ELEMENT r (a*)>\n<!ELEMENT a EMPTY>\n<!ATTLIST a k CDATA #REQUIRED>",
             "a.k -> a"),
        ]
        last = None
        with ServiceClient(*server.address) as client:
            for round_number in range(4):
                dtd, sigma = specs[round_number % 2]
                response = client.call(
                    {"op": "check", "dtd": dtd, "constraints": sigma}
                )
                assert response["ok"]
                _, samples = parse_exposition(scrape(address))
                value = samples[("repro_session_requests_total", ())]
                if last is not None:
                    assert value > last, "eviction rolled session.* backwards"
                last = value
        assert server.registry.core_stats()["sessions_evicted"] >= 3
    finally:
        front.close()


# -- unit: histogram, collector, controller -------------------------------


def test_latency_histogram_buckets():
    histogram = LatencyHistogram()
    histogram.observe(0.0)
    histogram.observe(0.3)
    histogram.observe(1e9)
    snapshot = dict(histogram.snapshot())
    assert snapshot[0.0005] == 1
    assert snapshot[0.5] == 2
    assert snapshot[float("inf")] == 3
    assert histogram.count == 3
    assert histogram.total == pytest.approx(0.3 + 1e9)


def test_collector_absorbs_solver_stats_and_retires_sessions():
    collector = StatsCollector()
    collector.absorb_solver_stats(
        {"workers_spawned": 2, "parallel_waves": 3, "parallel_degraded": True,
         "dfs_nodes": 99}
    )
    collector.absorb_solver_stats({"workers_spawned": 1})
    collector.retire_session({"requests": 5, "cache_hits": 2})
    counters = collector.counters()
    assert counters["pool.workers_spawned"] == 3
    assert counters["pool.parallel_waves"] == 3
    assert counters["pool.parallel_degraded"] == 1
    assert "pool.dfs_nodes" not in counters  # only pool counters cross over
    assert counters["session.requests"] == 5


def test_adaptive_controller_clamps_to_effective_parallelism():
    ceiling = effective_parallelism()
    controller = AdaptiveJobsController(target_latency=0.01)
    assert controller.ceiling == max(1, ceiling)
    for _ in range(64):
        controller.observe_solve(10.0)
        assert 1 <= controller.current() <= ceiling
    for _ in range(64):
        controller.observe_wave(0.0, 2)
        assert 1 <= controller.current() <= ceiling
    assert controller.current() == 1


def test_adaptive_controller_grows_and_shrinks_with_latency():
    collector = StatsCollector()
    controller = AdaptiveJobsController(
        target_latency=0.1, ceiling=4, collector=collector
    )
    for _ in range(6):
        controller.observe_solve(1.0)
    assert controller.current() == 4
    assert controller.grown >= 3
    for _ in range(12):
        controller.observe_solve(0.001)
    assert controller.current() == 1
    assert controller.shrunk >= 1
    counters = collector.counters()
    assert counters["pool.jobs_grown"] == controller.grown
    assert counters["pool.jobs_shrunk"] == controller.shrunk
    assert counters["pool.effective_jobs"] == 1
