"""Conformance checking tests (Definition 2.2)."""

from repro.dtd.model import DTD
from repro.workloads.examples import figure1_tree
from repro.xmltree.builder import element, text
from repro.xmltree.model import XMLTree
from repro.xmltree.validate import TreeValidator, conforms


class TestConforms:
    def test_figure1_conforms_to_d1(self, d1):
        assert conforms(figure1_tree(), d1)

    def test_wrong_root_label(self, d1):
        tree = XMLTree(element("teacher"))
        report = conforms(tree, d1)
        assert not report
        assert any("root" in error for error in report.errors)

    def test_undeclared_element_type(self):
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"})
        report = conforms(XMLTree(element("r", element("ghost"))), d)
        assert not report
        assert any("ghost" in e for e in report.errors)

    def test_children_word_checked(self, d1):
        # teach must have exactly two subjects.
        tree = XMLTree(
            element(
                "teachers",
                element(
                    "teacher",
                    element("teach",
                            element("subject", text("x"), taught_by="t")),
                    element("research", text("r")),
                    name="n",
                ),
            )
        )
        report = conforms(tree, d1)
        assert not report
        assert any("teach" in e for e in report.errors)

    def test_missing_attribute(self, d1):
        tree = figure1_tree()
        del tree.ext("teacher")[0].attrs["name"]
        report = conforms(tree, d1)
        assert not report
        assert any("name" in e for e in report.errors)

    def test_extra_attribute(self, d1):
        tree = figure1_tree()
        tree.ext("research")[0].attrs["bogus"] = "x"
        report = conforms(tree, d1)
        assert not report
        assert any("bogus" in e for e in report.errors)

    def test_text_where_element_expected(self):
        d = DTD.build("r", {"r": "(a)", "a": "EMPTY"})
        report = conforms(XMLTree(element("r", text("oops"))), d)
        assert not report

    def test_empty_content_allows_no_children(self):
        d = DTD.build("r", {"r": "EMPTY"})
        assert conforms(XMLTree(element("r")), d)
        assert not conforms(XMLTree(element("r", text("x"))), d)

    def test_max_errors_caps_reporting(self):
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"})
        bad_children = [element("ghost") for _ in range(50)]
        report = TreeValidator(d).validate(
            XMLTree(element("r", *bad_children)), max_errors=5
        )
        assert len(report.errors) == 5

    def test_validator_reuse(self, d1):
        validator = TreeValidator(d1)
        assert validator.validate(figure1_tree())
        assert validator.validate(figure1_tree())
        assert validator.dtd is d1
