"""Property test: the Lemma 3.3 equivalence over random specifications.

Consistency of (D, Sigma) must coincide with the *non*-implication of
phi1 over the Figure-3 extension D' — for arbitrary unary Sigma, not just
the worked examples. Both sides are decided by independent code paths
(the consistency checker vs. the negation-based implication checker over
a different DTD), so this is a strong end-to-end cross-check.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies
from repro.checkers.config import CheckerConfig
from repro.relational.reductions import consistency_to_implication
from repro.workloads.generators import random_dtd, random_unary_constraints

_FAST = CheckerConfig(want_witness=False)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    num_keys=st.integers(0, 2),
    num_fks=st.integers(0, 2),
)
def test_lemma33_equivalence_random(seed, num_keys, num_fks):
    dtd = random_dtd(seed, num_types=4)
    sigma = random_unary_constraints(seed, dtd, num_keys, num_fks)
    reduction = consistency_to_implication(dtd)

    consistent = check_consistency(dtd, sigma, _FAST).consistent
    implication1 = implies(
        reduction.dtd_prime,
        [*sigma, reduction.ell, reduction.phi2],
        reduction.phi1,
        _FAST,
    ).implied
    assert consistent == (not implication1)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_lemma33_second_form_random(seed):
    dtd = random_dtd(seed, num_types=4)
    sigma = random_unary_constraints(seed, dtd, num_keys=1, num_fks=1)
    reduction = consistency_to_implication(dtd)

    consistent = check_consistency(dtd, sigma, _FAST).consistent
    implication2 = implies(
        reduction.dtd_prime,
        [*sigma, reduction.ell, reduction.phi1],
        reduction.phi2,
        _FAST,
    ).implied
    assert consistent == (not implication2)
