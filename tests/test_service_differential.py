"""Service-vs-direct differential: the byte-identity contract.

Every request type replayed through the ``repro serve`` front end must
return byte-identical verdicts, witnesses and solver stats to the direct
:class:`~repro.checkers.config.CheckerConfig` path — including repeats
(served from the response cache) and requests issued after a session was
LRU-evicted and re-admitted.  Expected payloads are built here from
direct checker calls, independently of the session layer's own
serialization, so a drift on either side fails the comparison.
"""

import asyncio
import json

from repro.analysis.diagnostics import diagnose
from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.satisfaction import violations
from repro.dtd.serializer import dtd_to_string
from repro.service.registry import SessionRegistry
from repro.service.server import CheckingServer
from repro.workloads.examples import figure1_tree, teachers_dtd_d1
from repro.workloads.generators import wide_flat_dtd
from repro.xmltree.parse import parse_xml
from repro.xmltree.serialize import tree_to_string
from repro.xmltree.validate import conforms

SIGMA1 = (
    "teacher.name -> teacher\n"
    "subject.taught_by -> subject\n"
    "subject.taught_by => teacher.name"
)
KEYS = "teacher.name -> teacher\nsubject.taught_by -> subject"
CHAIN = "t0.x <= t1.x\nt1.x <= t2.x"


def _specs():
    d1 = teachers_dtd_d1()
    wide = wide_flat_dtd(4)
    return {
        "inconsistent": (d1, SIGMA1),
        "consistent": (d1, KEYS),
        "chain": (wide, CHAIN),
    }


def _tree_text(tree):
    return tree_to_string(tree) if tree is not None else None


def _expected_check(dtd, sigma_text):
    result = check_consistency(dtd, parse_constraints(sigma_text))
    return {
        "consistent": result.consistent,
        "method": result.method,
        "message": result.message,
        "stats": dict(result.stats),
        "witness": _tree_text(result.witness),
    }


def _expected_implies(dtd, sigma_text, phi_text):
    result = implies(
        dtd, parse_constraints(sigma_text), parse_constraint(phi_text)
    )
    return {
        "implied": result.implied,
        "method": result.method,
        "message": result.message,
        "stats": dict(result.stats),
        "counterexample": _tree_text(result.counterexample),
    }


def _expected_diagnose(dtd, sigma_text):
    report = diagnose(dtd, parse_constraints(sigma_text))
    return {
        "consistent": report.consistent,
        "dtd_satisfiable": report.dtd_satisfiable,
        "mus": [str(phi) for phi in report.mus],
        "redundant": [str(phi) for phi in report.redundant],
        "summary": report.summary(),
        "stats": report.stats.as_dict(),
    }


def _expected_validate(dtd, sigma_text, document):
    tree = parse_xml(document)
    report = conforms(tree, dtd)
    violated = violations(tree, parse_constraints(sigma_text))
    return {
        "conforms": bool(report),
        "errors": list(report.errors),
        "satisfies": not violated,
        "violations": [str(phi) for phi in violated],
    }


def _request_suite():
    """(request, expected-payload) pairs covering every request type."""
    suite = []
    doc = tree_to_string(figure1_tree())
    for name, (dtd, sigma_text) in _specs().items():
        dtd_text = dtd_to_string(dtd)
        spec = {"dtd": dtd_text, "constraints": sigma_text}
        suite.append(
            ({"op": "check", **spec}, _expected_check(dtd, sigma_text))
        )
        suite.append(
            ({"op": "diagnose", **spec}, _expected_diagnose(dtd, sigma_text))
        )
        if name == "chain":
            for phi in ("t0.x <= t2.x", "t2.x <= t0.x"):
                suite.append(
                    (
                        {"op": "implies", **spec, "phi": phi},
                        _expected_implies(dtd, sigma_text, phi),
                    )
                )
        else:
            phi = "subject.taught_by <= teacher.name"
            suite.append(
                (
                    {"op": "implies", **spec, "phi": phi},
                    _expected_implies(dtd, sigma_text, phi),
                )
            )
            suite.append(
                (
                    {"op": "validate", **spec, "document": doc},
                    _expected_validate(dtd, sigma_text, doc),
                )
            )
    return suite


def _replay(server, requests):
    """Feed request dicts through the server's dispatch; return responses."""

    async def run():
        responses = []
        for index, request in enumerate(requests):
            line = json.dumps({"id": index, **request})
            responses.append(await server.handle_request(line))
        return responses

    return asyncio.run(run())


def _canon(payload):
    return json.dumps(payload, sort_keys=True)


def test_every_request_type_is_byte_identical_to_direct():
    suite = _request_suite()
    server = CheckingServer(SessionRegistry())
    # Each request twice: novel (a real solve) and repeated (the response
    # cache) must both be byte-identical to the direct path.
    requests = [request for request, _ in suite] * 2
    responses = _replay(server, requests)
    expectations = [expected for _, expected in suite] * 2
    for request, response, expected in zip(
        requests, responses, expectations
    ):
        assert response["ok"], response
        assert _canon(response["result"]) == _canon(expected), request["op"]
    hits = sum(
        session["cache_hits"]
        for session in server.stats_payload()["sessions"].values()
    )
    assert hits == len(suite), "second round must come from the cache"
    server.executor.shutdown(wait=False)


def test_byte_identity_survives_eviction_and_readmission():
    suite = [
        (request, expected)
        for request, expected in _request_suite()
        if request["op"] in ("check", "implies")
    ]
    server = CheckingServer(SessionRegistry(max_sessions=1))
    # Interleave specs so every request evicts the previous session, then
    # replay the whole sequence once more: each re-admission is a cold
    # session whose answers must still match the direct path.
    requests = [request for request, _ in suite] * 2
    responses = _replay(server, requests)
    expectations = [expected for _, expected in suite] * 2
    for request, response, expected in zip(
        requests, responses, expectations
    ):
        assert response["ok"], response
        assert _canon(response["result"]) == _canon(expected), request["op"]
    stats = server.registry.stats()
    assert stats["sessions"] == 1
    # Three specs rotate through a one-slot registry twice: every
    # admission beyond the first evicted the previous resident.
    assert stats["sessions_opened"] >= 6
    assert stats["sessions_evicted"] == stats["sessions_opened"] - 1
    server.executor.shutdown(wait=False)


def test_errors_are_identical_alone_and_inside_batches():
    dtd_text = dtd_to_string(teachers_dtd_d1())
    spec = {"dtd": dtd_text, "constraints": KEYS}
    bad_phi = "nosuch.attr -> nosuch"
    server = CheckingServer(SessionRegistry())
    single, batch = _replay(
        server,
        [
            {"op": "implies", **spec, "phi": bad_phi},
            {"op": "implies_all", **spec, "phis": [bad_phi, KEYS.splitlines()[0]]},
        ],
    )
    assert not single["ok"]
    inline = batch["result"]["results"][0]
    assert single["error"] == inline["error"]
    assert batch["result"]["results"][1]["implied"] is True
    server.executor.shutdown(wait=False)
