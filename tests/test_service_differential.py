"""Service-vs-direct differential: the byte-identity contract.

Every request type replayed through the ``repro serve`` front end must
return byte-identical verdicts, witnesses and solver stats to the direct
:class:`~repro.checkers.config.CheckerConfig` path — including repeats
(served from the response cache) and requests issued after a session was
LRU-evicted and re-admitted.  Expected payloads are built here from
direct checker calls, independently of the session layer's own
serialization, so a drift on either side fails the comparison.
"""

import asyncio
import http.client
import json
import math

from repro.analysis.diagnostics import diagnose
from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.satisfaction import violations
from repro.dtd.serializer import dtd_to_string
from repro.service.http import HTTPFrontend
from repro.service.registry import SessionRegistry
from repro.service.server import CheckingServer
from repro.workloads.examples import figure1_tree, teachers_dtd_d1
from repro.workloads.generators import wide_flat_dtd
from repro.xmltree.parse import parse_xml
from repro.xmltree.serialize import tree_to_string
from repro.xmltree.validate import conforms

SIGMA1 = (
    "teacher.name -> teacher\n"
    "subject.taught_by -> subject\n"
    "subject.taught_by => teacher.name"
)
KEYS = "teacher.name -> teacher\nsubject.taught_by -> subject"
CHAIN = "t0.x <= t1.x\nt1.x <= t2.x"


def _specs():
    d1 = teachers_dtd_d1()
    wide = wide_flat_dtd(4)
    return {
        "inconsistent": (d1, SIGMA1),
        "consistent": (d1, KEYS),
        "chain": (wide, CHAIN),
    }


def _tree_text(tree):
    return tree_to_string(tree) if tree is not None else None


def _expected_check(dtd, sigma_text):
    result = check_consistency(dtd, parse_constraints(sigma_text))
    return {
        "consistent": result.consistent,
        "method": result.method,
        "message": result.message,
        "stats": dict(result.stats),
        "witness": _tree_text(result.witness),
    }


def _expected_implies(dtd, sigma_text, phi_text):
    result = implies(
        dtd, parse_constraints(sigma_text), parse_constraint(phi_text)
    )
    return {
        "implied": result.implied,
        "method": result.method,
        "message": result.message,
        "stats": dict(result.stats),
        "counterexample": _tree_text(result.counterexample),
    }


def _expected_diagnose(dtd, sigma_text):
    report = diagnose(dtd, parse_constraints(sigma_text))
    return {
        "consistent": report.consistent,
        "dtd_satisfiable": report.dtd_satisfiable,
        "mus": [str(phi) for phi in report.mus],
        "redundant": [str(phi) for phi in report.redundant],
        "summary": report.summary(),
        "stats": report.stats.as_dict(),
    }


def _expected_validate(dtd, sigma_text, document):
    tree = parse_xml(document)
    report = conforms(tree, dtd)
    violated = violations(tree, parse_constraints(sigma_text))
    return {
        "conforms": bool(report),
        "errors": list(report.errors),
        "satisfies": not violated,
        "violations": [str(phi) for phi in violated],
    }


def _request_suite():
    """(request, expected-payload) pairs covering every request type."""
    suite = []
    doc = tree_to_string(figure1_tree())
    for name, (dtd, sigma_text) in _specs().items():
        dtd_text = dtd_to_string(dtd)
        spec = {"dtd": dtd_text, "constraints": sigma_text}
        suite.append(
            ({"op": "check", **spec}, _expected_check(dtd, sigma_text))
        )
        suite.append(
            ({"op": "diagnose", **spec}, _expected_diagnose(dtd, sigma_text))
        )
        if name == "chain":
            for phi in ("t0.x <= t2.x", "t2.x <= t0.x"):
                suite.append(
                    (
                        {"op": "implies", **spec, "phi": phi},
                        _expected_implies(dtd, sigma_text, phi),
                    )
                )
        else:
            phi = "subject.taught_by <= teacher.name"
            suite.append(
                (
                    {"op": "implies", **spec, "phi": phi},
                    _expected_implies(dtd, sigma_text, phi),
                )
            )
            suite.append(
                (
                    {"op": "validate", **spec, "document": doc},
                    _expected_validate(dtd, sigma_text, doc),
                )
            )
    return suite


def _replay(server, requests):
    """Feed request dicts through the server's dispatch; return responses."""

    async def run():
        responses = []
        for index, request in enumerate(requests):
            line = json.dumps({"id": index, **request})
            responses.append(await server.handle_request(line))
        return responses

    return asyncio.run(run())


def _canon(payload):
    return json.dumps(payload, sort_keys=True)


def test_every_request_type_is_byte_identical_to_direct():
    suite = _request_suite()
    server = CheckingServer(SessionRegistry())
    # Each request twice: novel (a real solve) and repeated (the response
    # cache) must both be byte-identical to the direct path.
    requests = [request for request, _ in suite] * 2
    responses = _replay(server, requests)
    expectations = [expected for _, expected in suite] * 2
    for request, response, expected in zip(
        requests, responses, expectations
    ):
        assert response["ok"], response
        assert _canon(response["result"]) == _canon(expected), request["op"]
    hits = sum(
        session["cache_hits"]
        for session in server.stats_payload()["sessions"].values()
    )
    assert hits == len(suite), "second round must come from the cache"
    server.executor.shutdown(wait=False)


def test_byte_identity_survives_eviction_and_readmission():
    suite = [
        (request, expected)
        for request, expected in _request_suite()
        if request["op"] in ("check", "implies")
    ]
    server = CheckingServer(SessionRegistry(max_sessions=1))
    # Interleave specs so every request evicts the previous session, then
    # replay the whole sequence once more: each re-admission is a cold
    # session whose answers must still match the direct path.
    requests = [request for request, _ in suite] * 2
    responses = _replay(server, requests)
    expectations = [expected for _, expected in suite] * 2
    for request, response, expected in zip(
        requests, responses, expectations
    ):
        assert response["ok"], response
        assert _canon(response["result"]) == _canon(expected), request["op"]
    stats = server.registry.stats()
    assert stats["sessions"] == 1
    # Three specs rotate through a one-slot registry twice: every
    # admission beyond the first evicted the previous resident.
    assert stats["sessions_opened"] >= 6
    assert stats["sessions_evicted"] == stats["sessions_opened"] - 1
    server.executor.shutdown(wait=False)


def test_errors_are_identical_alone_and_inside_batches():
    dtd_text = dtd_to_string(teachers_dtd_d1())
    spec = {"dtd": dtd_text, "constraints": KEYS}
    bad_phi = "nosuch.attr -> nosuch"
    server = CheckingServer(SessionRegistry())
    single, batch = _replay(
        server,
        [
            {"op": "implies", **spec, "phi": bad_phi},
            {"op": "implies_all", **spec, "phis": [bad_phi, KEYS.splitlines()[0]]},
        ],
    )
    assert not single["ok"]
    inline = batch["result"]["results"][0]
    assert single["error"] == inline["error"]
    assert batch["result"]["results"][1]["implied"] is True
    server.executor.shutdown(wait=False)


# ---------------------------------------------------------------------------
# HTTP front end: the body IS the line protocol's response line
# ---------------------------------------------------------------------------


def _http_exchange(address, request):
    """POST one request dict to ``/v1/{op}``: (status, headers, raw body)."""
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(
            "POST",
            f"/v1/{request['op']}",
            body=json.dumps(request),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def _line_exchange(address, requests):
    """Raw response lines (bytes) over the line protocol, one connection."""

    async def run():
        reader, writer = await asyncio.open_connection(*address)
        lines = []
        for request in requests:
            writer.write((json.dumps(request) + "\n").encode("utf-8"))
            await writer.drain()
            lines.append(await reader.readline())
        writer.close()
        return lines

    return asyncio.run(run())


def test_http_body_is_byte_identical_to_line_protocol_for_every_op():
    """Both transports against ONE live server: the HTTP response body
    for every request type equals the line protocol's raw response line
    for the same request (same id), byte for byte — including the stats
    block, because the second transport is served from the session's
    response cache."""
    server = CheckingServer(SessionRegistry())
    front = HTTPFrontend(server)
    http_address = front.start_background(line_port=0)
    try:
        suite = _request_suite()
        requests = [
            {"id": index, **request}
            for index, (request, _) in enumerate(suite)
        ]
        line_bytes = _line_exchange(server.address, requests)
        for request, raw, (_, expected) in zip(requests, line_bytes, suite):
            status, headers, body = _http_exchange(http_address, request)
            assert status == 200, body
            assert headers["Content-Type"] == "application/json"
            assert body == raw, request["op"]
            payload = json.loads(body)
            assert payload["ok"], payload
            assert _canon(payload["result"]) == _canon(expected), request["op"]
    finally:
        front.close()


def test_http_overload_shed_is_byte_identical_and_answers_429():
    """A shed request carries the same ``overloaded`` envelope on both
    transports; HTTP additionally maps it to 429 with a ``Retry-After``
    header derived from the in-band ``retry_after`` hint."""
    dtd, sigma_text = _specs()["consistent"]
    server = CheckingServer(SessionRegistry(), max_inflight=0)
    front = HTTPFrontend(server)
    http_address = front.start_background(line_port=0)
    try:
        request = {
            "id": "shed",
            "op": "check",
            "dtd": dtd_to_string(dtd),
            "constraints": sigma_text,
        }
        [raw] = _line_exchange(server.address, [request])
        status, headers, body = _http_exchange(http_address, request)
        assert status == 429
        assert body == raw
        payload = json.loads(body)
        assert payload["ok"] is False
        assert payload["error"]["type"] == "overloaded"
        assert int(headers["Retry-After"]) == max(
            1, math.ceil(payload["error"]["retry_after"])
        )
    finally:
        front.close()


def test_http_budget_exceeded_is_byte_identical_and_answers_504():
    dtd, sigma_text = _specs()["consistent"]
    server = CheckingServer(SessionRegistry())
    front = HTTPFrontend(server)
    http_address = front.start_background(line_port=0)
    try:
        request = {
            "id": "late",
            "op": "check",
            "dtd": dtd_to_string(dtd),
            "constraints": sigma_text,
            "deadline": 0.0,
        }
        [raw] = _line_exchange(server.address, [request])
        status, _, body = _http_exchange(http_address, request)
        assert status == 504
        assert body == raw
        payload = json.loads(body)
        assert payload["error"]["type"] == "budget_exceeded"
    finally:
        front.close()


# ---------------------------------------------------------------------------
# HTTP protocol edges: every refusal is structured, correct, non-fatal
# ---------------------------------------------------------------------------


def _raw_http(address, blob: bytes) -> bytes:
    """One raw exchange: send ``blob``, read until the server closes."""
    import socket

    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(blob)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


def _refusal(address, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(*address, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def test_http_refusals_are_structured_and_leave_the_server_serving():
    """Every HTTP-layer refusal (unknown route/op, wrong method, bad
    JSON, contradictory body op) answers the structured ``protocol``
    error envelope with the right status — and the server keeps
    answering real requests afterwards."""
    server = CheckingServer(SessionRegistry())
    front = HTTPFrontend(server)
    address = front.start_background()
    try:
        cases = [
            ("POST", "/nope", None, 404),
            ("POST", "/v1/frobnicate", None, 404),
            ("GET", "/v1/check", None, 405),
            ("PUT", "/metrics", None, 405),
            ("POST", "/v1/check", b"not json", 400),
            ("POST", "/v1/check", b'["a list"]', 400),
            ("POST", "/v1/check", b'{"op": "implies"}', 400),
        ]
        for method, path, body, expected_status in cases:
            status, payload = _refusal(address, method, path, body=body)
            assert status == expected_status, (method, path, payload)
            assert payload["ok"] is False
            assert payload["error"]["type"] == "protocol"
            assert payload["error"]["message"]
        # None of those reached the session API, and serving still works.
        status, payload = _refusal(
            address, "POST", "/v1/stats", body=b"{}"
        )
        assert status == 200 and payload["ok"], payload
        assert payload["result"]["server"]["errors"] == 0
    finally:
        front.close()


def test_http_framing_errors_answer_then_close():
    """Framing errors (oversized/chunked/garbled Content-Length, bad
    request line) leave the stream position unknown: the server answers
    one structured refusal and closes the connection."""
    from repro.service.http import MAX_BODY_BYTES

    server = CheckingServer(SessionRegistry())
    front = HTTPFrontend(server)
    address = front.start_background()
    try:
        blobs = [
            (
                f"POST /v1/check HTTP/1.1\r\nContent-Length: "
                f"{MAX_BODY_BYTES + 1}\r\n\r\n".encode(),
                b"413",
            ),
            (
                b"POST /v1/check HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                b"400",
            ),
            (
                b"POST /v1/check HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
                b"400",
            ),
            (
                b"POST /v1/check HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
                b"400",
            ),
            (b"garbage\r\n\r\n", b"400"),
        ]
        for blob, status in blobs:
            raw = _raw_http(address, blob)
            assert raw.startswith(b"HTTP/1.1 " + status), (blob, raw[:60])
            head, _, body = raw.partition(b"\r\n\r\n")
            assert b"Connection: close" in head
            payload = json.loads(body)
            assert payload["ok"] is False
            assert payload["error"]["type"] == "protocol"
    finally:
        front.close()


def test_http_head_metrics_and_metrics_only_listener():
    """``HEAD /metrics`` answers headers only; a ``metrics_only`` front
    end (the ``--metrics-port`` listener) scrapes but refuses ``/v1``."""
    server = CheckingServer(SessionRegistry())
    front = HTTPFrontend(server, metrics_only=True)
    address = front.start_background()
    try:
        conn = http.client.HTTPConnection(*address, timeout=10)
        try:
            conn.request("HEAD", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert int(response.getheader("Content-Length")) > 0
            assert response.read() == b""
            conn.request("GET", "/metrics")
            scrape = conn.getresponse()
            assert scrape.status == 200
            assert b"repro_server_requests_total" in scrape.read()
        finally:
            conn.close()
        status, payload = _refusal(address, "POST", "/v1/check", body=b"{}")
        assert status == 404
        assert payload["error"]["type"] == "protocol"
    finally:
        front.close()
