"""Unit tests for the XML tree model, builder, serializer and parser."""

import pytest

from repro.errors import InvalidTreeError, ParseError
from repro.xmltree.builder import element, text
from repro.xmltree.model import Element, TextNode, XMLTree
from repro.xmltree.parse import parse_xml
from repro.xmltree.serialize import tree_to_string
from repro.xmltree.transform import splice_types


class TestModel:
    def test_node_identity_equality(self):
        # Two structurally equal elements are *different* nodes (key semantics).
        a1 = element("a", k="1")
        a2 = element("a", k="1")
        assert a1 is not a2
        assert a1 != a2 or a1 is a2  # no structural equality defined

    def test_ext_document_order(self):
        tree = XMLTree(
            element("r", element("a", k="1"), element("b"), element("a", k="2"))
        )
        assert [e.attrs["k"] for e in tree.ext("a")] == ["1", "2"]

    def test_ext_attr_is_a_set(self):
        tree = XMLTree(element("r", element("a", k="1"), element("a", k="1")))
        assert tree.attr_values("a", "k") == ["1", "1"]
        assert tree.ext_attr("a", "k") == {"1"}

    def test_child_word_uses_text_sentinel(self):
        node = element("r", element("a"), text("hi"), element("b"))
        assert node.child_word() == ["a", "#PCDATA", "b"]

    def test_size_counts_all_nodes(self):
        tree = XMLTree(element("r", element("a", text("x"))))
        assert tree.size() == 3

    def test_copy_is_deep(self):
        tree = XMLTree(element("r", element("a", k="1")))
        clone = tree.copy()
        clone.ext("a")[0].attrs["k"] = "2"
        assert tree.ext("a")[0].attrs["k"] == "1"

    def test_shared_node_rejected(self):
        shared = element("a")
        with pytest.raises(InvalidTreeError, match="share"):
            XMLTree(element("r", shared, shared))

    def test_non_string_attr_rejected(self):
        node = Element("r")
        node.attrs["k"] = 7  # bypass the builder
        with pytest.raises(InvalidTreeError, match="non-string"):
            XMLTree(node)

    def test_text_node_requires_string(self):
        with pytest.raises(InvalidTreeError):
            TextNode(42)


class TestBuilder:
    def test_string_children_become_text(self):
        node = element("a", "hello")
        assert isinstance(node.children[0], TextNode)
        assert node.children[0].value == "hello"

    def test_attrs_via_kwargs(self):
        assert element("a", k="v").attrs == {"k": "v"}

    def test_invalid_child_rejected(self):
        with pytest.raises(InvalidTreeError):
            element("a", 42)

    def test_non_string_attr_rejected(self):
        with pytest.raises(InvalidTreeError):
            element("a", k=1)


class TestSerializeParse:
    def test_round_trip_structure(self):
        tree = XMLTree(
            element(
                "db",
                element("item", text("desc & more"), id="1", note='say "hi"'),
                element("item", id="2"),
            )
        )
        parsed = parse_xml(tree_to_string(tree))
        assert [e.label for e in parsed.elements()] == ["db", "item", "item"]
        item = parsed.ext("item")[0]
        assert item.attrs == {"id": "1", "note": 'say "hi"'}
        assert item.children[0].value == "desc & more"

    def test_parse_self_closing(self):
        tree = parse_xml("<r><a/><a/></r>")
        assert len(tree.ext("a")) == 2

    def test_parse_skips_prolog_comments_doctype(self):
        tree = parse_xml(
            '<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r EMPTY>]>'
            "<!-- hi --><r/><!-- bye -->"
        )
        assert tree.root.label == "r"

    def test_whitespace_only_text_dropped(self):
        tree = parse_xml("<r>\n  <a/>\n</r>")
        assert all(not isinstance(c, TextNode) for c in tree.root.children)

    def test_whitespace_kept_when_asked(self):
        tree = parse_xml("<r> <a/> </r>", drop_whitespace=False)
        assert any(isinstance(c, TextNode) for c in tree.root.children)

    def test_entities(self):
        tree = parse_xml("<r>&lt;&amp;&gt;&#65;&#x42;</r>")
        assert tree.root.children[0].value == "<&>AB"

    @pytest.mark.parametrize(
        "bad",
        [
            "<r>",
            "<r></s>",
            "<r><a></r></a>",
            "<r/><r/>",
            '<r a="1" a="2"/>',
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_xml(bad)


class TestSplice:
    def test_splice_preserves_order(self):
        tree = XMLTree(
            element(
                "r",
                element("~1", element("a"), element("~1", element("b"))),
                element("c"),
            )
        )
        spliced = splice_types(tree, {"~1"})
        assert [e.label for e in spliced.elements()] == ["r", "a", "b", "c"]

    def test_splice_root_rejected(self):
        with pytest.raises(InvalidTreeError):
            splice_types(XMLTree(element("r")), {"r"})

    def test_splice_with_attrs_rejected(self):
        tree = XMLTree(element("r", element("x", k="1")))
        with pytest.raises(InvalidTreeError, match="attributes"):
            splice_types(tree, {"x"})

    def test_splice_keeps_text(self):
        tree = XMLTree(element("r", element("~1", text("hello"))))
        spliced = splice_types(tree, {"~1"})
        assert spliced.root.children[0].value == "hello"
