"""Fidelity tests: facts the paper states explicitly, checked verbatim.

Each test cites the place in the paper whose concrete claim it verifies —
these are the "ground truth" anchors of the reproduction, independent of
our own abstractions.
"""

from repro.checkers.consistency import check_consistency
from repro.constraints.parser import parse_constraints
from repro.dtd.simplify import simplify_dtd
from repro.encoding.combined import build_encoding
from repro.encoding.dtd_system import encode_dtd, ext_var
from repro.ilp.condsys import solve_conditional_system
from repro.ilp.scipy_backend import solve_milp


class TestSection1Cardinalities:
    """The displayed equations (1) and (2) of Section 1."""

    def test_equation_2_two_subjects_per_teacher(self, d1):
        # "1 <= 2 |ext(teacher)| = |ext(subject)|": every Psi_DN1 solution.
        psi = encode_dtd(simplify_dtd(d1))
        for extra in (1, 2, 3):
            system = psi.system.copy()
            system.add_ge({ext_var("teacher"): 1}, extra)
            solution = solve_milp(system)
            assert solution.feasible
            assert (
                solution.values[ext_var("subject")]
                == 2 * solution.values[ext_var("teacher")]
            )
            assert solution.values[ext_var("teacher")] >= 1

    def test_equation_1_from_sigma1(self, d1, sigma1):
        # "|ext(subject)| <= |ext(teacher)|" follows from Sigma1: check it
        # on the encoding with the DTD's own equations removed by relaxing
        # the subject count — i.e. the combined system must be infeasible
        # exactly because (1) and (2) clash.
        assert not check_consistency(d1, sigma1).consistent

    def test_each_half_alone_is_fine(self, d1, sigma1):
        assert check_consistency(d1, []).consistent
        # And Sigma1 is satisfiable over a DTD without the two-subject rule.
        from repro.workloads.generators import teachers_family

        dtd_ok, sigma_ok = teachers_family(0, consistent=True)
        assert check_consistency(dtd_ok, sigma_ok).consistent


class TestSection41SimplifiedD1:
    """The worked simplification D_N1 of Section 4.1."""

    def test_structure_matches_paper(self, d1):
        simple = simplify_dtd(d1)
        # The paper's D_N1 keeps all five original types and adds three
        # fresh ones (tau_1t, tau_2t, tau_eps) for teacher, teacher*.
        assert simple.original_types == {
            "teachers", "teacher", "teach", "research", "subject"
        }
        generated = [t for t in simple.types if not simple.is_original(t)]
        assert len(generated) == 3

    def test_psi_dn1_consistent_psi_dn2_not(self, d1, d2):
        # "It is easy to check that Psi_DN1 is consistent, whereas
        # Psi_DN2 is not." (end of Section 4.1)
        assert solve_milp(encode_dtd(simplify_dtd(d1)).system).feasible
        assert solve_milp(encode_dtd(simplify_dtd(d2)).system).infeasible

    def test_root_count_is_one(self, d1):
        solution = solve_milp(encode_dtd(simplify_dtd(d1)).system)
        assert solution.values[ext_var("teachers")] == 1

    def test_research_equals_teacher_count(self, d1):
        # From P1(teacher) = teach, research: one research per teacher.
        psi = encode_dtd(simplify_dtd(d1))
        system = psi.system.copy()
        system.add_ge({ext_var("teacher"): 1}, 3)
        solution = solve_milp(system)
        assert (
            solution.values[ext_var("research")]
            == solution.values[ext_var("teacher")]
        )


class TestLemma44ValueConstruction:
    """Lemma 4.4: cardinality solutions lift to actual value assignments."""

    def test_witness_realizes_prefix_containment(self, d1):
        sigma = parse_constraints(
            "subject.taught_by <= teacher.name"
        )
        encoding = build_encoding(d1, sigma)
        result, _ = solve_conditional_system(encoding.condsys)
        assert result.feasible
        from repro.witness.synthesize import synthesize_witness

        tree = synthesize_witness(encoding, result.values)
        assert tree.ext_attr("subject", "taught_by") <= tree.ext_attr(
            "teacher", "name"
        )


class TestPrimaryKeyObservation:
    """Section 4.2: 'at most one ID attribute per element type' — the
    Figure-4 family already satisfies the primary restriction, so the
    hardness survives it (Corollary 4.8)."""

    def test_reduction_is_primary(self):
        from repro.constraints.classes import is_primary_key_set
        from repro.reductions.lip import lip_to_xml, random_lip_instance

        for seed in range(5):
            reduction = lip_to_xml(random_lip_instance(3, 3, 0.5, seed))
            assert is_primary_key_set(reduction.sigma)


class TestCUnaryKICGeneralizesFK:
    """Section 4: C^unary_K,IC allows inclusion constraints *independent*
    of keys — strictly more than foreign keys."""

    def test_bare_inclusion_without_target_key(self, d1):
        # taught_by ⊆ name without making name a key: satisfiable even
        # with duplicate names.
        sigma = parse_constraints("subject.taught_by <= teacher.name")
        result = check_consistency(d1, sigma)
        assert result.consistent

    def test_fk_version_differs_from_bare_ic(self):
        # The *key component* is what separates a foreign key from a bare
        # inclusion: with one `a` and two `b` elements and b.y ⊆ a.x, the
        # bare inclusion a.x ⊆ b.y is satisfiable (all values equal), but
        # the foreign key a.x => b.y additionally keys b.y, forcing
        # |ext(b.y)| = 2 <= |ext(a.x)| = 1 — inconsistent.
        from repro.dtd.model import DTD

        d = DTD.build(
            "r", {"r": "(a, b, b)", "a": "EMPTY", "b": "EMPTY"},
            attrs={"a": ["x"], "b": ["y"]},
        )
        common = "b.y <= a.x"
        bare = parse_constraints(f"{common}\na.x <= b.y")
        fk = parse_constraints(f"{common}\na.x => b.y")
        assert check_consistency(d, bare).consistent
        assert not check_consistency(d, fk).consistent
