"""Shared fixtures: the paper's examples and checker configurations."""

from __future__ import annotations

import pytest

from repro.checkers.config import CheckerConfig
from repro.workloads.examples import (
    recursive_dtd_d2,
    school_constraints_d3,
    school_dtd_d3,
    sigma1_constraints,
    teachers_dtd_d1,
)


@pytest.fixture
def d1():
    """The teachers DTD of Section 1."""
    return teachers_dtd_d1()


@pytest.fixture
def sigma1():
    """The constraints Sigma1 of Section 1."""
    return sigma1_constraints()


@pytest.fixture
def d2():
    """The recursive DTD D2 (no finite tree)."""
    return recursive_dtd_d2()


@pytest.fixture
def d3():
    """The school DTD of Section 2.2."""
    return school_dtd_d3()


@pytest.fixture
def sigma3():
    """The five multi-attribute constraints over D3."""
    return school_constraints_d3()


@pytest.fixture
def fast_config():
    """Checker config without witness synthesis (pure decision)."""
    return CheckerConfig(want_witness=False)


@pytest.fixture
def exact_config():
    """Checker config using the certified exact backend."""
    return CheckerConfig(backend="exact")
