"""End-to-end test of the installed ``python -m repro`` entry point."""

import subprocess
import sys

from repro.dtd.serializer import dtd_to_string
from repro.workloads.examples import teachers_dtd_d1

SIGMA1 = (
    "teacher.name -> teacher\n"
    "subject.taught_by -> subject\n"
    "subject.taught_by => teacher.name\n"
)


def _run(*argv: str):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestMainModule:
    def test_check_inconsistent(self, tmp_path):
        dtd_path = tmp_path / "d1.dtd"
        dtd_path.write_text(dtd_to_string(teachers_dtd_d1()))
        sigma_path = tmp_path / "sigma1.txt"
        sigma_path.write_text(SIGMA1)
        proc = _run("check", str(dtd_path), str(sigma_path))
        assert proc.returncode == 1
        assert "consistent: False" in proc.stdout

    def test_check_dtd_alone(self, tmp_path):
        dtd_path = tmp_path / "d1.dtd"
        dtd_path.write_text(dtd_to_string(teachers_dtd_d1()))
        proc = _run("check", str(dtd_path))
        assert proc.returncode == 0
        assert "consistent: True" in proc.stdout

    def test_root_override(self, tmp_path):
        dtd_path = tmp_path / "two_roots.dtd"
        # `b` is independent of `a`, so either may serve as the root
        # (Definition 2.1 forbids the root from occurring in content
        # models, so only types unreferenced by others are re-rootable).
        dtd_path.write_text(
            "<!ELEMENT a (c?)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n"
        )
        assert _run("check", str(dtd_path)).returncode == 0
        assert _run("--root", "b", "check", str(dtd_path)).returncode == 0

    def test_usage_error_exit_code(self, tmp_path):
        proc = _run("check", str(tmp_path / "missing.dtd"))
        assert proc.returncode == 2
        assert "error:" in proc.stderr
