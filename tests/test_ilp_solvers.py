"""The scipy and exact ILP backends agree — unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.ilp.exact import solve_exact
from repro.ilp.model import LinearSystem
from repro.ilp.scipy_backend import lp_infeasible, solve_milp


def _both(system):
    return solve_milp(system), solve_exact(system)


class TestKnownSystems:
    def test_simple_feasible(self):
        system = LinearSystem()
        system.add_eq({"x": 1, "y": 1}, 5)
        system.add_ge({"x": 1}, 2)
        for result in _both(system):
            assert result.feasible
            assert result.values["x"] + result.values["y"] == 5
            assert result.values["x"] >= 2

    def test_simple_infeasible(self):
        system = LinearSystem()
        system.add_le({"x": 1}, 1)
        system.add_ge({"x": 1}, 2)
        for result in _both(system):
            assert result.infeasible

    def test_parity_infeasibility(self):
        # 2x = 2y + 1 has no integer solution; LP relaxation is feasible.
        system = LinearSystem()
        system.add_eq({"x": 2, "y": -2}, 1)
        for result in _both(system):
            assert result.infeasible
        assert not lp_infeasible(system)

    def test_integrality_forces_larger_solution(self):
        # 3x >= 2, x integer: minimum is 1, not 2/3.
        system = LinearSystem()
        system.add_ge({"x": 3}, 2)
        for result in _both(system):
            assert result.feasible
            assert result.values["x"] == 1

    def test_empty_system_feasible(self):
        system = LinearSystem()
        for result in _both(system):
            assert result.feasible

    def test_constant_false_row(self):
        system = LinearSystem()
        system.add_ge({}, 1)
        for result in _both(system):
            assert result.infeasible

    def test_upper_bounds_respected(self):
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 1}, 10)
        system.set_upper("x", 3)
        for result in _both(system):
            assert result.feasible
            assert result.values["x"] <= 3
            assert result.values["x"] + result.values["y"] >= 10

    def test_minimization_prefers_small(self):
        system = LinearSystem()
        system.add_ge({"x": 1}, 4)
        result = solve_milp(system)
        assert result.values["x"] == 4

    def test_objective_override(self):
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 1}, 3)
        result = solve_milp(system, objective={"x": 1.0, "y": 10.0})
        assert result.feasible
        assert result.values["y"] == 0

    def test_exact_node_limit_raises(self):
        # 2x + 3y = 1 over nonnegative integers: the root LP is fractional
        # (gcd preprocessing cannot cut it), so branching is required and a
        # one-node budget must be reported as exhausted.
        system = LinearSystem()
        system.add_eq({"x": 2, "y": 3}, 1)
        with pytest.raises(SolverError):
            solve_exact(system, node_limit=1)

    def test_gcd_preprocessing_catches_divisibility(self):
        system = LinearSystem()
        system.add_eq({"x": 6, "y": 9}, 5)
        assert solve_exact(system).infeasible


class TestLpInfeasible:
    def test_definitely_infeasible_lp(self):
        system = LinearSystem()
        system.add_le({"x": 1}, 1)
        system.add_ge({"x": 1}, 3)
        assert lp_infeasible(system)

    def test_feasible_lp_not_pruned(self):
        system = LinearSystem()
        system.add_ge({"x": 1}, 3)
        assert not lp_infeasible(system)


@st.composite
def _random_systems(draw):
    num_vars = draw(st.integers(1, 4))
    num_rows = draw(st.integers(1, 4))
    names = [f"v{i}" for i in range(num_vars)]
    system = LinearSystem()
    for _ in range(num_rows):
        coeffs = {
            name: draw(st.integers(-3, 3)) for name in names
        }
        rhs = draw(st.integers(-6, 6))
        sense = draw(st.sampled_from(["le", "ge", "eq"]))
        if sense == "le":
            system.add_le(coeffs, rhs)
        elif sense == "ge":
            system.add_ge(coeffs, rhs)
        else:
            system.add_eq(coeffs, rhs)
    for name in names:
        system.ensure_var(name)
        system.set_upper(name, 8)  # keep brute force cheap
    return system


def _brute_force_feasible(system) -> bool:
    from itertools import product

    names = list(system.variables)
    for values in product(range(9), repeat=len(names)):
        assignment = dict(zip(names, values))
        if not system.check(assignment):
            return True
    return False


class TestBackendAgreement:
    @settings(max_examples=60, deadline=None)
    @given(system=_random_systems())
    def test_scipy_exact_and_brute_force_agree(self, system):
        expected = _brute_force_feasible(system)
        scipy_result = solve_milp(system)
        assert scipy_result.status in ("feasible", "infeasible")
        assert scipy_result.feasible == expected
        exact_result = solve_exact(system, node_limit=20000)
        assert exact_result.feasible == expected
        if expected:
            assert not system.check(scipy_result.values)
            assert not system.check(exact_result.values)
