"""The scipy and exact ILP backends agree — unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.ilp.exact import solve_exact
from repro.ilp.model import LinearSystem
from repro.ilp.scipy_backend import lp_infeasible, solve_milp


def _both(system):
    return solve_milp(system), solve_exact(system)


class TestKnownSystems:
    def test_simple_feasible(self):
        system = LinearSystem()
        system.add_eq({"x": 1, "y": 1}, 5)
        system.add_ge({"x": 1}, 2)
        for result in _both(system):
            assert result.feasible
            assert result.values["x"] + result.values["y"] == 5
            assert result.values["x"] >= 2

    def test_simple_infeasible(self):
        system = LinearSystem()
        system.add_le({"x": 1}, 1)
        system.add_ge({"x": 1}, 2)
        for result in _both(system):
            assert result.infeasible

    def test_parity_infeasibility(self):
        # 2x = 2y + 1 has no integer solution; LP relaxation is feasible.
        system = LinearSystem()
        system.add_eq({"x": 2, "y": -2}, 1)
        for result in _both(system):
            assert result.infeasible
        assert not lp_infeasible(system)

    def test_integrality_forces_larger_solution(self):
        # 3x >= 2, x integer: minimum is 1, not 2/3.
        system = LinearSystem()
        system.add_ge({"x": 3}, 2)
        for result in _both(system):
            assert result.feasible
            assert result.values["x"] == 1

    def test_empty_system_feasible(self):
        system = LinearSystem()
        for result in _both(system):
            assert result.feasible

    def test_constant_false_row(self):
        system = LinearSystem()
        system.add_ge({}, 1)
        for result in _both(system):
            assert result.infeasible

    def test_upper_bounds_respected(self):
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 1}, 10)
        system.set_upper("x", 3)
        for result in _both(system):
            assert result.feasible
            assert result.values["x"] <= 3
            assert result.values["x"] + result.values["y"] >= 10

    def test_minimization_prefers_small(self):
        system = LinearSystem()
        system.add_ge({"x": 1}, 4)
        result = solve_milp(system)
        assert result.values["x"] == 4

    def test_objective_override(self):
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 1}, 3)
        result = solve_milp(system, objective={"x": 1.0, "y": 10.0})
        assert result.feasible
        assert result.values["y"] == 0

    def test_exact_node_limit_raises(self):
        # 2x + 3y = 1 over nonnegative integers: the root LP is fractional
        # (gcd preprocessing cannot cut it), so branching is required and a
        # one-node budget must be reported as exhausted.
        system = LinearSystem()
        system.add_eq({"x": 2, "y": 3}, 1)
        with pytest.raises(SolverError):
            solve_exact(system, node_limit=1)

    def test_gcd_preprocessing_catches_divisibility(self):
        system = LinearSystem()
        system.add_eq({"x": 6, "y": 9}, 5)
        assert solve_exact(system).infeasible


class TestLpInfeasible:
    def test_definitely_infeasible_lp(self):
        system = LinearSystem()
        system.add_le({"x": 1}, 1)
        system.add_ge({"x": 1}, 3)
        assert lp_infeasible(system)

    def test_feasible_lp_not_pruned(self):
        system = LinearSystem()
        system.add_ge({"x": 1}, 3)
        assert not lp_infeasible(system)


@st.composite
def _random_systems(draw):
    num_vars = draw(st.integers(1, 4))
    num_rows = draw(st.integers(1, 4))
    names = [f"v{i}" for i in range(num_vars)]
    system = LinearSystem()
    for _ in range(num_rows):
        coeffs = {
            name: draw(st.integers(-3, 3)) for name in names
        }
        rhs = draw(st.integers(-6, 6))
        sense = draw(st.sampled_from(["le", "ge", "eq"]))
        if sense == "le":
            system.add_le(coeffs, rhs)
        elif sense == "ge":
            system.add_ge(coeffs, rhs)
        else:
            system.add_eq(coeffs, rhs)
    for name in names:
        system.ensure_var(name)
        system.set_upper(name, 8)  # keep brute force cheap
    return system


def _brute_force_feasible(system) -> bool:
    from itertools import product

    names = list(system.variables)
    for values in product(range(9), repeat=len(names)):
        assignment = dict(zip(names, values))
        if not system.check(assignment):
            return True
    return False


class TestBackendAgreement:
    @settings(max_examples=60, deadline=None)
    @given(system=_random_systems())
    def test_scipy_exact_and_brute_force_agree(self, system):
        expected = _brute_force_feasible(system)
        scipy_result = solve_milp(system)
        assert scipy_result.status in ("feasible", "infeasible")
        assert scipy_result.feasible == expected
        exact_result = solve_exact(system, node_limit=20000)
        assert exact_result.feasible == expected
        if expected:
            assert not system.check(scipy_result.values)
            assert not system.check(exact_result.values)


class TestToggleableRows:
    """Base-row (de)activation on both assembled backends (DESIGN.md §6)."""

    def _system(self):
        system = LinearSystem()
        system.add_ge({"x": 1}, 1, label="keep")      # always active
        blocking = system.add_le({"x": 1}, 0, label="toggle")
        return system, blocking

    def test_assembled_row_toggles_and_reactivation(self):
        from repro.ilp.assembled import AssembledSystem

        system, blocking = self._system()
        assembled = AssembledSystem(system)
        off = frozenset({blocking})
        # Alternate active/inactive several times: the engine state must
        # track the requested set, not just the first solve's.
        for _ in range(3):
            assert assembled.solve_int({}).status == "infeasible"
            relaxed = assembled.solve_int({}, inactive_rows=off)
            assert relaxed.status == "feasible"
            assert relaxed.values["x"] == 1
        status, _ = assembled.lp_probe({}, inactive_rows=off)
        assert status == "feasible"
        assert assembled.lp_probe({})[0] == "infeasible"
        assert assembled.assemblies == 1

    def test_assembled_check_and_materialize_skip_inactive(self):
        from repro.ilp.assembled import AssembledSystem

        system, blocking = self._system()
        assembled = AssembledSystem(system)
        off = frozenset({blocking})
        assert assembled.check_values({"x": 1}, {}, set(), off) == []
        assert assembled.check_values({"x": 1}, {}, set()) != []
        materialized = assembled.materialize({}, set(), off)
        assert materialized.num_rows == system.num_rows - 1
        assert solve_exact(materialized).feasible

    def test_exact_row_toggles_on_live_basis(self):
        from repro.ilp.exact import ExactAssembledSystem

        system, blocking = self._system()
        exact = ExactAssembledSystem(system)
        off = frozenset({blocking})
        for _ in range(3):
            assert exact.solve_int({}).status == "infeasible"
            relaxed = exact.solve_int({}, inactive_rows=off)
            assert relaxed.status == "feasible"
            assert relaxed.values["x"] == 1

    def test_exact_gcd_row_respects_toggle(self):
        from repro.ilp.exact import ExactAssembledSystem

        system = LinearSystem()
        gcd_row = system.add_eq({"x": 2}, 1, label="no-integer-point")
        exact = ExactAssembledSystem(system)
        assert exact.solve_int({}).status == "infeasible"
        relaxed = exact.solve_int({}, inactive_rows=frozenset({gcd_row}))
        assert relaxed.status == "feasible"

    def test_condsys_toggles_only_registered_rows(self):
        from repro.ilp.condsys import ConditionalSystem, solve_conditional_system

        system = LinearSystem()
        always = system.add_eq({("ext", "r"): 1}, 1, label="root")
        blocking = system.add_le({("ext", "r"): 1}, 0, label="toggle")
        cs = ConditionalSystem(
            base=system,
            ext_var={"r": ("ext", "r")},
            root="r",
            element_types=("r",),
            edges=(),
            toggleable_rows=frozenset({blocking}),
        )
        for incremental in (True, False):
            result, _ = solve_conditional_system(cs, incremental=incremental)
            assert result.status == "infeasible"
            # Untoggleable rows stay active even under an empty active set.
            result, _ = solve_conditional_system(
                cs, active_rows=frozenset(), incremental=incremental
            )
            assert result.status == "feasible"
            assert result.values[("ext", "r")] == 1
        assert always == 0  # stable ids are plain row indices

    def test_workspace_shares_one_assembly_across_subsets(self):
        from repro.ilp.condsys import (
            ConditionalSystem,
            SolveWorkspace,
            solve_conditional_system,
        )

        system = LinearSystem()
        system.add_ge({("ext", "r"): 1}, 1, label="root")
        toggles = [
            system.add_ge({("ext", "r"): 1}, bound, label=f"ge-{bound}")
            for bound in (2, 3)
        ]
        cs = ConditionalSystem(
            base=system,
            ext_var={"r": ("ext", "r")},
            root="r",
            element_types=("r",),
            edges=(),
            toggleable_rows=frozenset(toggles),
        )
        workspace = SolveWorkspace(cs.base)
        total_assemblies = 0
        for active in (frozenset(), frozenset({toggles[0]}), frozenset(toggles)):
            result, stats = solve_conditional_system(
                cs, active_rows=active, workspace=workspace
            )
            total_assemblies += stats.assemblies
            expected = max([1] + [3 if t == toggles[1] else 2 for t in active])
            assert result.feasible
            assert result.values[("ext", "r")] == expected
        assert total_assemblies == 1
        assert workspace.assemblies == 1

    def test_workspace_rejects_foreign_base(self):
        from repro.ilp.condsys import (
            ConditionalSystem,
            SolveWorkspace,
            solve_conditional_system,
        )

        system = LinearSystem()
        system.add_eq({("ext", "r"): 1}, 1)
        cs = ConditionalSystem(
            base=system,
            ext_var={"r": ("ext", "r")},
            root="r",
            element_types=("r",),
            edges=(),
        )
        with pytest.raises(SolverError, match="different base"):
            solve_conditional_system(
                cs, workspace=SolveWorkspace(system.copy())
            )
