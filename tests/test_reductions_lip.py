"""Theorem 4.7 (Figure 4) reduction tests: LIP <-> XML consistency."""

import pytest

from repro.checkers.consistency import check_consistency
from repro.checkers.primary import check_consistency_primary
from repro.constraints.classes import classify, is_primary_key_set, ConstraintClass
from repro.reductions.lip import (
    LIPInstance,
    brute_force_binary_solution,
    extract_binary_solution,
    lip_to_xml,
    random_lip_instance,
)


class TestLIPInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            LIPInstance(())
        with pytest.raises(ValueError):
            LIPInstance(((1, 2),))
        with pytest.raises(ValueError):
            LIPInstance(((1, 0), (1,)))

    def test_brute_force_finds_solution(self):
        assert brute_force_binary_solution(LIPInstance(((1, 0), (0, 1)))) == (1, 1)

    def test_brute_force_detects_unsolvable(self):
        # x1 = 1 and x1 + x2 = 1 and x2 = 1 cannot all hold.
        instance = LIPInstance(((1, 0), (1, 1), (0, 1)))
        assert brute_force_binary_solution(instance) is None

    def test_random_instance_deterministic(self):
        a = random_lip_instance(3, 4, 0.5, seed=7)
        b = random_lip_instance(3, 4, 0.5, seed=7)
        assert a == b
        assert all(any(row) for row in a.matrix)


class TestReductionStructure:
    def test_constraints_are_unary_and_primary(self):
        red = lip_to_xml(random_lip_instance(3, 3, 0.6, seed=1))
        assert classify(red.sigma) == ConstraintClass.UNARY_K_FK
        assert is_primary_key_set(red.sigma)

    def test_dtd_elements_per_figure4(self):
        red = lip_to_xml(LIPInstance(((1, 1),)))
        types = set(red.dtd.element_types)
        assert {"r", "F1", "b1", "VF1", "X1_1", "X1_2", "Z1_1", "Z1_2"} <= types


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_checker_agrees_with_brute_force(self, seed):
        instance = random_lip_instance(3, 3, 0.55, seed=seed)
        red = lip_to_xml(instance)
        oracle = brute_force_binary_solution(instance)
        result = check_consistency(red.dtd, red.sigma)
        assert result.consistent == (oracle is not None)
        if result.consistent:
            solution = extract_binary_solution(red, result.witness)
            for row in instance.matrix:
                assert sum(a * x for a, x in zip(row, solution)) == 1

    def test_known_solvable(self):
        red = lip_to_xml(LIPInstance(((1, 0, 1), (0, 1, 0))))
        result = check_consistency_primary(red.dtd, red.sigma)
        assert result.consistent

    def test_known_unsolvable(self):
        red = lip_to_xml(LIPInstance(((1, 0), (1, 1), (0, 1))))
        assert not check_consistency(red.dtd, red.sigma).consistent

    def test_larger_instance(self):
        instance = random_lip_instance(4, 5, 0.4, seed=42)
        red = lip_to_xml(instance)
        oracle = brute_force_binary_solution(instance)
        result = check_consistency(red.dtd, red.sigma)
        assert result.consistent == (oracle is not None)
