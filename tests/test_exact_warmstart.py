"""Property and unit tests for the warm-started certified simplex.

The contract under test (DESIGN.md section 5): after *any* sequence of
bound patches, cut appends and cut toggles, a warm re-solve of the
persistent basis must report exactly the same feasibility status as a
cold solve of the same patched system, every feasible answer must
satisfy it exactly, and the node/pivot budget must fail
deterministically instead of spinning.  (Returned *optima* may differ:
branch and bound returns the first integral DFS solution, and the two
modes can branch from alternate optimal LP vertices.)

Property tests use Hypothesis when it is available and fall back to a
seeded ``random`` sweep otherwise, so the file is useful on minimal
containers too.
"""

import random

import pytest

from repro.errors import SolverError
from repro.ilp.exact import (
    ExactAssembledSystem,
    ExactStats,
    solve_exact,
)
from repro.ilp.model import LinearSystem

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the test image
    HAVE_HYPOTHESIS = False


def _random_system(rng: random.Random) -> LinearSystem:
    """A small random integer system with explicit boxes (cheap oracles)."""
    num_vars = rng.randint(1, 4)
    num_rows = rng.randint(1, 4)
    names = [f"v{i}" for i in range(num_vars)]
    system = LinearSystem()
    for _ in range(num_rows):
        coeffs = {name: rng.randint(-3, 3) for name in names}
        rhs = rng.randint(-6, 6)
        sense = rng.choice(["le", "ge", "eq"])
        getattr(system, f"add_{sense}")(coeffs, rhs)
    for name in names:
        system.ensure_var(name)
        system.set_upper(name, 8)
    return system


def _random_patches(rng: random.Random, system: LinearSystem) -> dict:
    patches = {}
    for var in system.variables:
        if rng.random() < 0.5:
            continue
        low = rng.randint(0, 4) if rng.random() < 0.6 else None
        high = rng.randint(2, 8) if rng.random() < 0.6 else None
        patches[var] = (low, high)
    return patches


def _assert_warm_matches_cold(system, patch_sequence, cut_plan=()):
    """Drive one warm system through the sequence; cross-check each step.

    The contract is the oracle's: identical feasibility *status*, and
    every feasible answer exactly satisfies the patched system.  Optimum
    equality is deliberately NOT asserted — branch and bound returns the
    first integral DFS solution, and warm/cold bases can land on
    alternate optimal LP vertices, branch differently, and return
    different (both valid) integer solutions.

    ``cut_plan`` maps step index -> (coeffs, rhs) cut to append just
    before that step, exercising basis extension under warmth.
    """
    warm = ExactAssembledSystem(system)
    cold = ExactAssembledSystem(system)
    cuts: list[int] = []
    cut_rows: dict[int, tuple[dict, int]] = {}
    cut_plan = dict(cut_plan)
    for step, patches in enumerate(patch_sequence):
        if step in cut_plan:
            coeffs, rhs = cut_plan[step]
            index = warm.add_cut(coeffs, rhs)
            cuts.append(index)
            cut_rows[index] = (coeffs, rhs)
            cold.add_cut(coeffs, rhs)
        # Toggle a pseudo-random subset of the pool per step.
        active = {c for c in cuts if (step + c) % 2 == 0}
        warm_result = warm.solve_int(patches, active)
        cold_result = cold.solve_int(patches, active, warm=False)
        assert warm_result.status == cold_result.status, (
            f"step {step}: warm={warm_result.status} cold={cold_result.status} "
            f"patches={patches} active={active}"
        )
        for result in (warm_result, cold_result):
            if not result.feasible:
                continue
            # Every answer must satisfy the patched system exactly.
            assert not system.check(result.values)
            for var, (low, high) in patches.items():
                value = result.values.get(var, 0)
                assert low is None or value >= low
                assert high is None or value <= high
            for index in active:
                coeffs, rhs = cut_rows[index]
                total = sum(
                    c * result.values.get(var, 0) for var, c in coeffs.items()
                )
                assert total >= rhs, f"step {step}: active cut {index} violated"


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("seed", range(30))
    def test_patch_sequences_seeded(self, seed):
        """Seeded fallback sweep (runs even without Hypothesis)."""
        rng = random.Random(seed * 9176 + 3)
        system = _random_system(rng)
        sequence = [_random_patches(rng, system) for _ in range(4)]
        cut_var = system.variables[0]
        _assert_warm_matches_cold(
            system, sequence, cut_plan={2: ({cut_var: 1}, rng.randint(1, 3))}
        )

    def test_branching_heavy_system_agrees(self):
        """A parity-flavoured system that forces real branch and bound."""
        system = LinearSystem()
        system.add_eq({"x": 2, "y": 3, "z": -1}, 7)
        system.add_ge({"x": 1, "y": 1}, 3)
        system.set_upper("x", 6)
        system.set_upper("y", 6)
        system.set_upper("z", 6)
        warm = solve_exact(system, warm=True)
        cold = solve_exact(system, warm=False)
        assert warm.status == cold.status == "feasible"
        assert not system.check(warm.values)
        assert not system.check(cold.values)

    def test_warm_solves_counted(self):
        """Consecutive patched solves actually reuse the basis."""
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 2}, 5)
        assembled = ExactAssembledSystem(system)
        assembled.solve_int({})
        assembled.solve_int({"x": (2, None)})
        assembled.solve_int({"x": (None, 1)})
        assert assembled.stats.warm_solves >= 2
        assert assembled.stats.cold_restarts == 1

    def test_cut_append_extends_warm_basis(self):
        """Adding a cut must not force a refactorization."""
        system = LinearSystem()
        system.add_le({"x": 1}, 9)
        assembled = ExactAssembledSystem(system)
        assert assembled.solve_int({}).values["x"] == 0
        restarts = assembled.stats.cold_restarts
        cut = assembled.add_cut({"x": 1}, 4)
        result = assembled.solve_int({}, {cut})
        assert result.feasible and result.values["x"] == 4
        assert assembled.stats.cold_restarts == restarts

    def test_deactivated_cut_constrains_nothing(self):
        system = LinearSystem()
        system.add_le({"x": 1}, 9)
        assembled = ExactAssembledSystem(system)
        cut = assembled.add_cut({"x": 1}, 4)
        assert assembled.solve_int({}, {cut}).values["x"] == 4
        assert assembled.solve_int({}, set()).values["x"] == 0
        assert assembled.solve_int({}, {cut}).values["x"] == 4

    def test_unfixing_a_pinned_variable_restores_optimality(self):
        """Regression: a column pinned ``lower == upper`` carries no dual
        sign condition, so its reduced cost may be arbitrary; when a later
        patch unfixes it the warm solve must not stop at a suboptimal
        point (found by the Hypothesis sweep, seed 99)."""
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 1}, 2)
        system.set_upper("x", 8)
        system.set_upper("y", 8)
        assembled = ExactAssembledSystem(system)
        pinned = assembled.solve_int({"x": (8, 8)})
        assert pinned.values == {"x": 8, "y": 0}
        released = assembled.solve_int({})
        assert sum(released.values.values()) == 2

    def test_contradictory_patch_is_infeasible(self):
        system = LinearSystem()
        system.add_ge({"x": 1}, 0)
        assembled = ExactAssembledSystem(system)
        assert assembled.solve_int({"x": (3, 1)}).infeasible
        # And the engine survives to serve the next (feasible) patch.
        assert assembled.solve_int({"x": (2, None)}).values["x"] == 2


if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_patch_sequences_hypothesis(data):
        """Hypothesis-driven variant of the seeded sweep (shrinks nicely)."""
        rng = random.Random(data.draw(st.integers(0, 2**20), label="seed"))
        system = _random_system(rng)
        steps = data.draw(st.integers(1, 4), label="steps")
        sequence = [_random_patches(rng, system) for _ in range(steps)]
        _assert_warm_matches_cold(system, sequence)


class TestBudgets:
    def _branchy_system(self) -> LinearSystem:
        # The root LP is fractional (gcd preprocessing cannot cut it), so
        # branching is required.
        system = LinearSystem()
        system.add_eq({"x": 2, "y": 3}, 1)
        return system

    def test_node_budget_raises_deterministically(self):
        with pytest.raises(SolverError, match="nodes"):
            solve_exact(self._branchy_system(), node_limit=1)

    def test_pivot_budget_raises_deterministically(self):
        """The warm path counts dual-simplex pivots, not just nodes, so a
        pathological patch sequence cannot spin inside one node."""
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 1}, 4)
        system.add_ge({"x": 1, "y": -1}, 1)
        system.add_le({"x": 1, "y": 2}, 9)
        with pytest.raises(SolverError, match="pivots"):
            solve_exact(system, pivot_limit=0)

    def test_pivot_budget_on_patched_resolves(self):
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 1}, 4)
        assembled = ExactAssembledSystem(system)
        assert assembled.solve_int({}).feasible
        with pytest.raises(SolverError, match="pivots"):
            assembled.solve_int({"x": (None, 1), "y": (None, 1)}, pivot_limit=0)

    def test_budget_error_does_not_corrupt_later_solves(self):
        system = LinearSystem()
        system.add_ge({"x": 1, "y": 1}, 4)
        assembled = ExactAssembledSystem(system)
        with pytest.raises(SolverError):
            assembled.solve_int({}, pivot_limit=0)
        result = assembled.solve_int({})
        assert result.feasible and sum(result.values.values()) == 4

    def test_stats_flow_through_solve_exact(self):
        stats = ExactStats()
        solve_exact(self._branchy_system(), stats=stats)
        assert stats.nodes >= 2  # the root is fractional, so it branched
        assert stats.pivots >= 1
