"""Implication checker tests (Theorems 3.5(3), 4.10, 5.4; Lemma 3.3)."""

import pytest

from repro.checkers.consistency import check_consistency
from repro.checkers.implication import implies, implies_all
from repro.checkers.primary import implies_primary
from repro.constraints.ast import Key
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.satisfaction import satisfies, satisfies_all
from repro.dtd.model import DTD
from repro.errors import InvalidConstraintError, UndecidableProblemError
from repro.relational.reductions import consistency_to_implication
from repro.workloads.generators import teachers_family
from repro.xmltree.validate import conforms


@pytest.fixture
def flat():
    return DTD.build(
        "r", {"r": "(a*, b*)", "a": "EMPTY", "b": "EMPTY"},
        attrs={"a": ["x", "z"], "b": ["y"]},
    )


class TestKeysOnly:
    def test_superkey_subsumption(self, d3):
        sigma = [parse_constraint("course[dept] -> course")]
        phi = parse_constraint("course[dept,course_no] -> course")
        result = implies(d3, sigma, phi)
        assert result.implied
        assert "subsumed" in result.message

    def test_subkey_not_implied_with_counterexample(self, d3):
        sigma = [parse_constraint("course[dept,course_no] -> course")]
        phi = parse_constraint("course[dept] -> course")
        result = implies(d3, sigma, phi)
        assert not result.implied
        tree = result.counterexample
        assert conforms(tree, d3)
        assert satisfies_all(tree, sigma)
        assert not satisfies(tree, phi)

    def test_single_occurrence_type_implies_any_key(self):
        # Only one 'a' element can ever exist: every key on it holds.
        d = DTD.build("r", {"r": "(a)", "a": "EMPTY"}, attrs={"a": ["x"]})
        result = implies(d, [], Key("a", ("x",)))
        assert result.implied
        assert "two" in result.message

    def test_empty_dtd_implies_everything(self, d2):
        d2_with_attr = DTD.build(
            "db", {"db": "(foo)", "foo": "(foo)"}, attrs={"foo": ["k"]}
        )
        assert implies(d2_with_attr, [], Key("foo", ("k",))).implied

    def test_unrelated_key_not_implied(self, d3):
        sigma = [parse_constraint("student[student_id] -> student")]
        phi = parse_constraint("course[dept] -> course")
        assert not implies(d3, sigma, phi).implied


class TestUnaryConeNP:
    def test_fk_implied_by_its_parts(self, flat):
        sigma = parse_constraints("a.x <= b.y\nb.y -> b")
        assert implies(flat, sigma, parse_constraint("a.x => b.y")).implied

    def test_fk_fails_without_key_part(self, flat):
        sigma = parse_constraints("a.x <= b.y")
        result = implies(flat, sigma, parse_constraint("a.x => b.y"))
        assert not result.implied
        assert "key component" in result.message

    def test_fk_fails_without_inclusion_part(self, flat):
        sigma = parse_constraints("b.y -> b")
        result = implies(flat, sigma, parse_constraint("a.x => b.y"))
        assert not result.implied
        assert "inclusion component" in result.message

    def test_inclusion_transitivity(self, flat):
        sigma = parse_constraints("a.x <= a.z\na.z <= b.y")
        assert implies(flat, sigma, parse_constraint("a.x <= b.y")).implied

    def test_inclusion_not_symmetric(self, flat):
        sigma = parse_constraints("a.x <= b.y")
        result = implies(flat, sigma, parse_constraint("b.y <= a.x"))
        assert not result.implied
        counterexample = result.counterexample
        assert satisfies_all(counterexample, sigma)
        assert not satisfies(counterexample, parse_constraint("b.y <= a.x"))

    def test_dtd_forces_key_implication(self):
        # Only one 'a' element possible: a.x -> a holds vacuously, even
        # though Sigma says nothing.
        d = DTD.build("r", {"r": "(a?, b*)", "a": "EMPTY", "b": "EMPTY"},
                      attrs={"a": ["x"], "b": ["y"]})
        sigma = parse_constraints("b.y <= a.x")
        assert implies(d, sigma, parse_constraint("a.x -> a")).implied

    def test_cardinality_interaction_implication(self):
        # D1-style: teach has exactly 2 subjects, so |ext(subject)| =
        # 2|ext(teacher)| > |ext(teacher)|; with taught_by ⊆ name,
        # taught_by cannot be a key of subject... it CAN fail to be: so
        # the implication of the subject key must be refuted — but with
        # the FK present the spec is inconsistent, hence everything is
        # implied.
        dtd, sigma = teachers_family(2, consistent=False)
        result = implies(dtd, sigma, parse_constraint("teacher.name !-> teacher"))
        assert result.implied  # inconsistent premises imply anything

    def test_negated_phi_supported(self, flat):
        # phi itself may be a negation: (D, {a.x -> a}) |- not(a.x -> a)?
        sigma = parse_constraints("a.x -> a")
        result = implies(flat, sigma, parse_constraint("a.x !-> a"))
        assert not result.implied

    def test_implication_via_inconsistent_sigma(self, flat):
        sigma = parse_constraints("a.x -> a\na.x !-> a")
        assert implies(flat, sigma, parse_constraint("b.y -> b")).implied


class TestLemma33Equivalence:
    """Consistency of (D, Sigma) iff non-implication over D' (Figure 3)."""

    @pytest.mark.parametrize("consistent", [True, False])
    def test_round_trip(self, consistent):
        dtd, sigma = teachers_family(2, consistent=consistent)
        reduction = consistency_to_implication(dtd)
        lhs = check_consistency(dtd, sigma).consistent
        implication = implies(
            reduction.dtd_prime,
            [*sigma, reduction.ell, reduction.phi2],
            reduction.phi1,
        )
        assert lhs == (not implication.implied)

    @pytest.mark.parametrize("consistent", [True, False])
    def test_round_trip_second_form(self, consistent):
        dtd, sigma = teachers_family(2, consistent=consistent)
        reduction = consistency_to_implication(dtd)
        lhs = check_consistency(dtd, sigma).consistent
        implication = implies(
            reduction.dtd_prime,
            [*sigma, reduction.ell, reduction.phi1],
            reduction.phi2,
        )
        assert lhs == (not implication.implied)


class TestImpliesAll:
    def test_batch_matches_individual_calls(self):
        from repro.workloads.generators import star_schema_family

        dtd, sigma = star_schema_family(2, consistent=True)
        phis = parse_constraints(
            "dim0.id -> dim0\n"
            "fact.ref0 <= dim0.id\n"
            "dim0.id <= fact.ref0\n"
            "dim1.id -> dim1"
        )
        batch = implies_all(dtd, sigma, phis)
        singles = [implies(dtd, sigma, phi) for phi in phis]
        assert [r.implied for r in batch] == [r.implied for r in singles]
        assert [r.implied for r in batch] == [True, True, False, True]

    def test_batch_counterexamples_are_real(self):
        from repro.workloads.generators import star_schema_family

        dtd, sigma = star_schema_family(1, consistent=True)
        phi = parse_constraint("dim0.id <= fact.ref0")
        (result,) = implies_all(dtd, sigma, [phi])
        assert not result.implied
        tree = result.counterexample
        assert tree is not None
        assert conforms(tree, dtd)
        assert satisfies_all(tree, sigma)
        assert not satisfies(tree, phi)

    def test_batch_validates_whole_specification(self):
        dtd = DTD.build(
            "r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]}
        )
        with pytest.raises(InvalidConstraintError):
            implies_all(dtd, [], [parse_constraint("b.y -> b")])

    def test_empty_batch(self):
        dtd = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]})
        assert implies_all(dtd, [], []) == []


class TestUndecidableFragments:
    def test_multiattr_fk_sigma_raises(self, d3, sigma3):
        phi = parse_constraint("student[student_id] -> student")
        with pytest.raises(UndecidableProblemError):
            implies(d3, sigma3, phi)

    def test_multiattr_fk_phi_raises(self, d3):
        phi = parse_constraint("enroll[student_id,dept] => student[student_id,student_id]")
        with pytest.raises(Exception):
            # Either undecidable or invalid (duplicate attrs) — both refuse.
            implies(d3, [], phi)


class TestPrimaryWrapper:
    def test_primary_implication(self, flat):
        sigma = parse_constraints("a.x <= b.y\nb.y -> b")
        result = implies_primary(flat, sigma, parse_constraint("a.x => b.y"))
        assert result.implied
        assert "primary" in result.method

    def test_primary_violation_rejected(self, flat):
        sigma = parse_constraints("a.x -> a\na.z -> a")
        with pytest.raises(InvalidConstraintError):
            implies_primary(flat, sigma, parse_constraint("b.y -> b"))
