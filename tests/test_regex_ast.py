"""Unit tests for the content-model regex AST."""

import pytest

from repro.regex.ast import (
    EPSILON,
    TEXT,
    TEXT_SYMBOL,
    Concat,
    Name,
    Optional,
    Plus,
    Star,
    Union,
    concat,
    union,
)


class TestNodes:
    def test_epsilon_renders_as_empty(self):
        assert str(EPSILON) == "EMPTY"

    def test_text_renders_as_pcdata(self):
        assert str(TEXT) == TEXT_SYMBOL

    def test_name_renders_symbol(self):
        assert str(Name("teacher")) == "teacher"

    def test_concat_requires_two_items(self):
        with pytest.raises(ValueError):
            Concat((Name("a"),))

    def test_union_requires_two_items(self):
        with pytest.raises(ValueError):
            Union((Name("a"),))

    def test_concat_str_parenthesizes_compound_children(self):
        inner = Union((Name("a"), Name("b")))
        expr = Concat((inner, Name("c")))
        assert str(expr) == "(a | b), c"

    def test_star_plus_optional_render_postfix(self):
        assert str(Star(Name("a"))) == "a*"
        assert str(Plus(Name("a"))) == "a+"
        assert str(Optional(Name("a"))) == "a?"

    def test_star_of_compound_parenthesizes(self):
        assert str(Star(Concat((Name("a"), Name("b"))))) == "(a, b)*"

    def test_nodes_are_hashable_and_comparable(self):
        assert Name("a") == Name("a")
        assert Name("a") != Name("b")
        assert len({Name("a"), Name("a"), Name("b")}) == 2
        assert Concat((Name("a"), Name("b"))) == Concat((Name("a"), Name("b")))


class TestHelpers:
    def test_concat_helper_collapses_degenerate_cases(self):
        assert concat() == EPSILON
        assert concat(Name("a")) == Name("a")
        assert concat(Name("a"), Name("b")) == Concat((Name("a"), Name("b")))

    def test_union_helper_collapses_single(self):
        assert union(Name("a")) == Name("a")
        assert union(Name("a"), Name("b")) == Union((Name("a"), Name("b")))

    def test_union_helper_rejects_empty(self):
        with pytest.raises(ValueError):
            union()
