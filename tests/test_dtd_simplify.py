"""Tests for DTD simplification (Section 4.1, Lemma 4.3)."""

from hypothesis import given, settings

from repro.dtd.analysis import has_valid_tree
from repro.dtd.model import DTD
from repro.dtd.simplify import (
    AltRule,
    EpsRule,
    OneRule,
    SeqRule,
    simplify_dtd,
)
from repro.regex.ast import TEXT_SYMBOL
from repro.workloads.generators import random_dtd
from repro.xmltree.validate import conforms
from tests.helpers import synthesize_any_tree


class TestNormalForm:
    def test_every_rule_is_simple(self, d1):
        simple = simplify_dtd(d1)
        for rule in simple.rules.values():
            assert isinstance(rule, (EpsRule, OneRule, SeqRule, AltRule))

    def test_original_types_preserved(self, d1):
        simple = simplify_dtd(d1)
        assert simple.original_types == frozenset(d1.element_types)
        assert set(d1.element_types) <= set(simple.types)

    def test_generated_types_have_no_attributes(self, d1):
        simple = simplify_dtd(d1)
        for tau in simple.types:
            if not simple.is_original(tau):
                assert simple.attrs(tau) == frozenset()

    def test_original_attributes_preserved(self, d1):
        simple = simplify_dtd(d1)
        assert simple.attrs("teacher") == frozenset({"name"})

    def test_star_becomes_right_recursion(self):
        # The paper's example: teachers -> teacher, teacher*.
        d = DTD.build("teachers", {"teachers": "(teacher, teacher*)",
                                   "teacher": "EMPTY"})
        simple = simplify_dtd(d)
        rule = simple.rules["teachers"]
        assert isinstance(rule, SeqRule)
        assert rule.first == "teacher"
        loop = simple.rules[rule.second]
        # teacher* expands through a OneRule to eps | (teacher, loop).
        assert isinstance(loop, (OneRule, AltRule))

    def test_d2_simplification_is_identity_shaped(self, d2):
        simple = simplify_dtd(d2)
        assert simple.rules["db"] == OneRule("foo")
        assert simple.rules["foo"] == OneRule("foo")
        assert set(simple.types) == {"db", "foo"}

    def test_text_symbol_in_rules(self, d1):
        simple = simplify_dtd(d1)
        assert simple.rules["subject"] == OneRule(TEXT_SYMBOL)

    def test_plus_desugars(self):
        d = DTD.build("r", {"r": "(a+)", "a": "EMPTY"})
        simple = simplify_dtd(d)
        rule = simple.rules["r"]
        assert isinstance(rule, SeqRule)
        assert rule.first == "a"

    def test_optional_desugars(self):
        d = DTD.build("r", {"r": "(a?)", "a": "EMPTY"})
        simple = simplify_dtd(d)
        rule = simple.rules["r"]
        assert isinstance(rule, AltRule)
        assert "a" in rule.symbols()

    def test_fresh_names_avoid_collisions(self):
        # A programmatic DTD may already use the ~ prefix.
        content = {"r": "(a, a)*", "a": "EMPTY"}
        d = DTD.build("r", content)
        object.__setattr__(
            d, "element_types", d.element_types
        )  # unchanged; just ensure validate ran
        simple = simplify_dtd(d)
        assert len(set(simple.types)) == len(simple.types)


class TestLemma43CountPreservation:
    """Trees over D_N contract to trees over D with identical ext counts.

    synthesize_any_tree builds a witness via the full pipeline (skeleton
    over D_N, contraction); here we re-validate the contraction against
    the *original* DTD and compare counts with the solved extents.
    """

    @settings(max_examples=25, deadline=None)
    @given(seed=__import__("hypothesis").strategies.integers(0, 10_000))
    def test_random_dtd_witness_counts(self, seed):
        dtd = random_dtd(seed, num_types=5)
        if not has_valid_tree(dtd):
            return
        tree, solution, simple = synthesize_any_tree(dtd)
        assert conforms(tree, dtd)
        for tau in dtd.element_types:
            expected = solution.get(("ext", tau), 0)
            assert len(tree.ext(tau)) == expected
