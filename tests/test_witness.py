"""Witness synthesis tests: skeleton assembly and value assignment."""

import pytest

from repro.dtd.analysis import has_valid_tree
from repro.dtd.model import DTD
from repro.dtd.simplify import simplify_dtd
from repro.encoding.combined import build_encoding
from repro.encoding.dtd_system import encode_dtd, ext_var
from repro.errors import SolverError
from repro.ilp.condsys import solve_conditional_system
from repro.ilp.scipy_backend import solve_milp
from repro.witness.skeleton import assemble_skeleton
from repro.witness.synthesize import synthesize_witness
from repro.workloads.generators import random_dtd
from repro.xmltree.validate import conforms
from tests.helpers import synthesize_any_tree


class TestSkeleton:
    def test_realizes_solved_counts(self, d1):
        simple = simplify_dtd(d1)
        result = solve_milp(encode_dtd(simple).system)
        assert result.feasible
        tree = assemble_skeleton(simple, result.values)
        for symbol in simple.types:
            assert len(tree.ext(symbol)) == result.values[ext_var(symbol)]

    def test_rejects_root_count_other_than_one(self, d1):
        simple = simplify_dtd(d1)
        with pytest.raises(SolverError, match="root count"):
            assemble_skeleton(simple, {ext_var(simple.root): 0})

    def test_rejects_inconsistent_pools(self, d1):
        simple = simplify_dtd(d1)
        result = solve_milp(encode_dtd(simple).system)
        values = dict(result.values)
        # Claim an extra teacher without a pool slot for it.
        values[ext_var("teacher")] += 1
        with pytest.raises(SolverError):
            assemble_skeleton(simple, values)

    def test_alt_choice_backtracking(self):
        """The DESIGN.md deadlock example: a greedy Alt choice strands
        nodes; backtracking (or the lookahead heuristic) must recover."""
        d = DTD.build(
            "r",
            {"r": "(a)", "a": "(b | c)", "b": "(a?)", "c": "EMPTY"},
        )
        simple = simplify_dtd(d)
        system = encode_dtd(simple).system.copy()
        # Force ext(a) = 2: a1 under r, a2 under b1; c1 under a2.
        system.add_ge({ext_var("a"): 1}, 2)
        result = solve_milp(system)
        assert result.feasible
        tree = assemble_skeleton(simple, result.values)
        assert len(tree.ext("a")) == result.values[ext_var("a")]


class TestSynthesizePipeline:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_dtd_witnesses_conform(self, seed):
        dtd = random_dtd(seed, num_types=5)
        if not has_valid_tree(dtd):
            return
        tree, _values, _simple = synthesize_any_tree(dtd)
        report = conforms(tree, dtd)
        assert report, report.errors

    def test_attribute_totality_in_witness(self, d1):
        tree, _values, _simple = synthesize_any_tree(d1)
        for teacher in tree.ext("teacher"):
            assert "name" in teacher.attrs
        for subject in tree.ext("subject"):
            assert "taught_by" in subject.attrs

    def test_key_values_distinct(self):
        d = DTD.build("r", {"r": "(a, a, a)", "a": "EMPTY"}, attrs={"a": ["k"]})
        from repro.constraints.parser import parse_constraints

        encoding = build_encoding(d, parse_constraints("a.k -> a"))
        result, _ = solve_conditional_system(encoding.condsys)
        assert result.feasible
        tree = synthesize_witness(encoding, result.values)
        values = tree.attr_values("a", "k")
        assert len(values) == 3
        assert len(set(values)) == 3

    def test_inclusion_values_nested(self):
        d = DTD.build(
            "r", {"r": "(a, a, b, b, b)", "a": "EMPTY", "b": "EMPTY"},
            attrs={"a": ["x"], "b": ["y"]},
        )
        from repro.constraints.parser import parse_constraints

        encoding = build_encoding(d, parse_constraints("a.x <= b.y"))
        result, _ = solve_conditional_system(encoding.condsys)
        tree = synthesize_witness(encoding, result.values)
        assert tree.ext_attr("a", "x") <= tree.ext_attr("b", "y")
