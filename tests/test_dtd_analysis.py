"""Unit tests for DTD analyses (Theorem 3.5(1), Lemma 3.6)."""

from repro.dtd.analysis import (
    can_have_two,
    has_valid_tree,
    must_occur,
    productive_types,
    reachable_types,
    usable_types,
)
from repro.dtd.model import DTD


class TestProductivity:
    def test_d2_root_unproductive(self, d2):
        assert "db" not in productive_types(d2)
        assert not has_valid_tree(d2)

    def test_d1_all_productive(self, d1):
        assert productive_types(d1) == frozenset(d1.element_types)
        assert has_valid_tree(d1)

    def test_union_escape_makes_recursion_productive(self):
        d = DTD.build("r", {"r": "(a)", "a": "(a | b)", "b": "EMPTY"})
        assert has_valid_tree(d)

    def test_mandatory_recursion_unproductive(self):
        d = DTD.build("r", {"r": "(a)", "a": "(a, b)", "b": "EMPTY"})
        assert productive_types(d) == frozenset({"b"})
        assert not has_valid_tree(d)

    def test_star_breaks_recursion(self):
        d = DTD.build("r", {"r": "(a)", "a": "(a*)"})
        assert has_valid_tree(d)


class TestReachability:
    def test_orphan_type_unreachable(self):
        d = DTD.build("r", {"r": "(a)", "a": "EMPTY", "orphan": "EMPTY"})
        assert "orphan" not in reachable_types(d)
        assert "orphan" not in usable_types(d)

    def test_usable_excludes_unproductive(self):
        d = DTD.build("r", {"r": "(a | b)", "a": "(a)", "b": "EMPTY"})
        assert "a" in reachable_types(d)
        assert "a" not in usable_types(d)
        assert "b" in usable_types(d)


class TestCanHaveTwo:
    def test_star_allows_two(self, d1):
        assert can_have_two(d1, "teacher")
        assert can_have_two(d1, "subject")

    def test_fixed_count_types(self):
        d = DTD.build("r", {"r": "(a, b)", "a": "EMPTY", "b": "EMPTY"})
        assert not can_have_two(d, "a")
        assert not can_have_two(d, "r")

    def test_two_via_concat(self):
        d = DTD.build("r", {"r": "(a, a)", "a": "EMPTY"})
        assert can_have_two(d, "a")

    def test_two_via_recursion(self):
        d = DTD.build("r", {"r": "(a)", "a": "(a?)"})
        assert can_have_two(d, "a")

    def test_unknown_type(self, d1):
        assert not can_have_two(d1, "ghost")

    def test_empty_dtd_has_no_two(self, d2):
        assert not can_have_two(d2, "foo")

    def test_choice_bounds_count(self):
        # Either one a or one b: never two a's.
        d = DTD.build("r", {"r": "(a | b)", "a": "EMPTY", "b": "EMPTY"})
        assert not can_have_two(d, "a")

    def test_unreachable_type_never_two(self):
        d = DTD.build("r", {"r": "(a)", "a": "EMPTY", "x": "(x?)"})
        assert not can_have_two(d, "x")


class TestMustOccur:
    def test_root_always_occurs(self, d1):
        assert must_occur(d1, "teachers")

    def test_mandatory_child(self, d1):
        assert must_occur(d1, "teacher")
        assert must_occur(d1, "research")

    def test_optional_child(self):
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"})
        assert not must_occur(d, "a")

    def test_choice_not_mandatory(self):
        d = DTD.build("r", {"r": "(a | b)", "a": "EMPTY", "b": "EMPTY"})
        assert not must_occur(d, "a")
        assert not must_occur(d, "b")
