"""Tests for 1-unambiguity checking of content models."""

import pytest
from hypothesis import given, settings

from repro.dtd.analysis import nondeterministic_types
from repro.dtd.model import DTD
from repro.regex.determinism import is_deterministic, nondeterminism_witnesses
from repro.regex.parser import parse_content_model
from tests.test_regex_matchers import _regexes


class TestIsDeterministic:
    @pytest.mark.parametrize(
        "model",
        [
            "(a, b)",
            "(a | b)",
            "(a*, b)",
            "(a, b)*",
            "(a?, b)",
            "EMPTY",
            "(#PCDATA)",
            "(#PCDATA | a | b)*",
            "(teach, research)",
        ],
    )
    def test_deterministic_models(self, model):
        assert is_deterministic(parse_content_model(model))

    @pytest.mark.parametrize(
        "model,witness",
        [
            ("((a, b) | (a, c))", "a"),     # classic textbook example
            ("(a*, a)", "a"),               # star then same symbol
            ("(a?, a)", "a"),
            ("((a | b)*, a)", "a"),
            ("(a, a?)*", "a"),
        ],
    )
    def test_nondeterministic_models(self, model, witness):
        expr = parse_content_model(model)
        assert not is_deterministic(expr)
        assert witness in nondeterminism_witnesses(expr)

    def test_repeated_symbol_in_sequence_is_fine(self):
        # (subject, subject) is deterministic: positions follow in order.
        assert is_deterministic(parse_content_model("(subject, subject)"))


class TestDtdLevel:
    def test_paper_dtds_are_deterministic(self, d1, d2, d3):
        assert nondeterministic_types(d1) == {}
        assert nondeterministic_types(d2) == {}
        assert nondeterministic_types(d3) == {}

    def test_offender_reported_with_witness(self):
        d = DTD.build(
            "r", {"r": "((a, b) | (a, c))", "a": "EMPTY", "b": "EMPTY",
                  "c": "EMPTY"},
        )
        offenders = nondeterministic_types(d)
        assert offenders == {"r": ["a"]}


class TestAgainstBruteForce:
    """Cross-check the Glushkov criterion against a direct simulation:
    for deterministic expressions, the reachable position set stays a
    singleton along every accepted word — that *is* what 1-unambiguity
    means operationally."""

    @settings(max_examples=150, deadline=None)
    @given(expr=_regexes())
    def test_deterministic_models_have_unique_runs(self, expr):
        from repro.regex.enumerate import words_up_to
        from repro.regex.glushkov import GlushkovAutomaton

        if not is_deterministic(expr):
            return
        auto = GlushkovAutomaton(expr)
        for word in words_up_to(expr, 3):
            if not word:
                continue
            current = {p for p in auto._first if auto._symbols[p] == word[0]}
            assert len(current) <= 1
            for symbol in word[1:]:
                nxt = set()
                for p in current:
                    nxt |= {
                        q for q in auto._follow[p] if auto._symbols[q] == symbol
                    }
                assert len(nxt) <= 1
                current = nxt
