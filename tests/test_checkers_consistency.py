"""Consistency checker tests: paper examples, families, negations."""

import pytest

from repro.checkers.consistency import check_consistency, dtd_has_valid_tree
from repro.checkers.primary import check_consistency_primary
from repro.constraints.parser import parse_constraints
from repro.constraints.satisfaction import satisfies_all
from repro.dtd.model import DTD
from repro.errors import InvalidConstraintError, UndecidableProblemError
from repro.workloads.generators import (
    fixed_dtd_constraint_family,
    star_schema_family,
    teachers_family,
)
from repro.xmltree.validate import conforms


class TestPaperExamples:
    def test_d1_sigma1_inconsistent(self, d1, sigma1):
        # The Section 1 headline: 2|ext(teacher)| = |ext(subject)| clashes
        # with |ext(subject)| <= |ext(teacher)|.
        result = check_consistency(d1, sigma1)
        assert not result.consistent

    def test_d1_alone_consistent_with_witness(self, d1):
        result = check_consistency(d1, [])
        assert result.consistent
        assert result.witness is not None
        assert conforms(result.witness, d1)

    def test_d1_keys_only_consistent(self, d1, sigma1):
        keys = [phi for phi in sigma1 if type(phi).__name__ == "Key"]
        result = check_consistency(d1, keys)
        assert result.consistent
        assert satisfies_all(result.witness, keys)

    def test_d2_empty_and_inconsistent(self, d2):
        assert not dtd_has_valid_tree(d2)
        assert not check_consistency(d2, []).consistent

    def test_d3_multiattr_raises_undecidable(self, d3, sigma3):
        with pytest.raises(UndecidableProblemError, match="Theorem 3.1"):
            check_consistency(d3, sigma3)

    def test_d3_keys_only_fragment_decidable(self, d3, sigma3):
        keys = [phi for phi in sigma3 if type(phi).__name__ == "Key"]
        result = check_consistency(d3, keys)
        assert result.consistent
        assert satisfies_all(result.witness, keys)


class TestWitnessQuality:
    def test_witness_satisfies_constraints(self, d1):
        sigma = parse_constraints(
            "teacher.name -> teacher\nsubject.taught_by <= teacher.name"
        )
        result = check_consistency(d1, sigma)
        assert result.consistent
        assert conforms(result.witness, d1)
        assert satisfies_all(result.witness, sigma)

    def test_no_witness_when_disabled(self, d1, fast_config):
        result = check_consistency(d1, [], fast_config)
        assert result.consistent
        assert result.witness is None

    def test_stats_populated(self, d1, sigma1):
        result = check_consistency(d1, sigma1)
        assert "dfs_nodes" in result.stats


class TestFamilies:
    @pytest.mark.parametrize("subjects", [2, 3, 5])
    def test_teachers_family_inconsistent(self, subjects):
        dtd, sigma = teachers_family(subjects, consistent=False)
        assert not check_consistency(dtd, sigma).consistent

    @pytest.mark.parametrize("subjects", [2, 4])
    def test_teachers_family_consistent_variant(self, subjects):
        dtd, sigma = teachers_family(subjects, consistent=True)
        result = check_consistency(dtd, sigma)
        assert result.consistent
        assert satisfies_all(result.witness, sigma)

    @pytest.mark.parametrize("dims", [1, 3])
    def test_star_schema_consistent(self, dims):
        dtd, sigma = star_schema_family(dims, consistent=True)
        result = check_consistency(dtd, sigma)
        assert result.consistent
        assert satisfies_all(result.witness, sigma)

    def test_star_schema_inconsistent_variant(self):
        dtd, sigma = star_schema_family(2, consistent=False)
        assert not check_consistency(dtd, sigma).consistent

    @pytest.mark.parametrize("count", [0, 5, 12])
    def test_fixed_dtd_family_consistent(self, count):
        dtd, sigma = fixed_dtd_constraint_family(count)
        result = check_consistency(dtd, sigma)
        assert result.consistent


class TestNegations:
    def _flat(self, num_b=1):
        return DTD.build(
            "r", {"r": "(a*, b*)", "a": "EMPTY", "b": "EMPTY"},
            attrs={"a": ["x"], "b": ["y"]},
        )

    def test_negkey_needs_two_elements(self):
        result = check_consistency(self._flat(), parse_constraints("a.x !-> a"))
        assert result.consistent
        values = result.witness.attr_values("a", "x")
        assert len(values) >= 2
        assert len(set(values)) < len(values)

    def test_key_and_negkey_clash(self):
        result = check_consistency(
            self._flat(), parse_constraints("a.x -> a\na.x !-> a")
        )
        assert not result.consistent

    def test_negkey_impossible_when_single_element(self):
        d = DTD.build("r", {"r": "(a)", "a": "EMPTY"}, attrs={"a": ["x"]})
        assert not check_consistency(d, parse_constraints("a.x !-> a")).consistent

    def test_neg_inclusion_realized_setwise(self):
        result = check_consistency(self._flat(), parse_constraints("a.x !<= b.y"))
        assert result.consistent
        tree = result.witness
        assert tree.ext_attr("a", "x") - tree.ext_attr("b", "y")

    def test_inclusion_and_negation_clash(self):
        result = check_consistency(
            self._flat(), parse_constraints("a.x <= b.y\na.x !<= b.y")
        )
        assert not result.consistent

    def test_self_negated_inclusion_inconsistent(self):
        result = check_consistency(self._flat(), parse_constraints("a.x !<= a.x"))
        assert not result.consistent

    def test_mixed_negations_with_keys(self):
        sigma = parse_constraints(
            """
            a.x -> a
            b.y !-> b
            a.x !<= b.y
            """
        )
        result = check_consistency(self._flat(), sigma)
        assert result.consistent
        assert satisfies_all(result.witness, sigma)


class TestConnectivityRepair:
    """DESIGN.md section 3: the naive paper encoding would answer wrongly."""

    def test_unproductive_cycle_cannot_supply_values(self):
        d = DTD.build(
            "r", {"r": "(a | b)", "a": "(a)", "b": "EMPTY"},
            attrs={"a": ["m"], "b": ["l"]},
        )
        result = check_consistency(d, parse_constraints("b.l <= a.m"))
        assert not result.consistent

    def test_productive_recursion_reachable_is_fine(self):
        d = DTD.build(
            "r", {"r": "(b, c?)", "c": "(a)", "a": "(a?)", "b": "EMPTY"},
            attrs={"a": ["m"], "b": ["l"]},
        )
        result = check_consistency(d, parse_constraints("b.l <= a.m"))
        assert result.consistent
        assert len(result.witness.ext("a")) >= 1

    def test_recursive_consistent_spec_minimal_witness(self):
        # Recursion used productively: chain of a's each with unique id.
        d = DTD.build("r", {"r": "(a)", "a": "(a?)"}, attrs={"a": ["id"]})
        result = check_consistency(d, parse_constraints("a.id -> a"))
        assert result.consistent
        assert conforms(result.witness, d)


class TestPrimaryRestriction:
    def test_wrapper_accepts_primary_sets(self, d1, sigma1):
        result = check_consistency_primary(d1, sigma1)
        assert not result.consistent
        assert "primary" in result.method

    def test_wrapper_rejects_double_keys(self):
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x", "y"]})
        sigma = parse_constraints("a.x -> a\na.y -> a")
        with pytest.raises(InvalidConstraintError, match="primary"):
            check_consistency_primary(d, sigma)


class TestBackends:
    def test_exact_backend_agrees_on_paper_example(self, d1, sigma1, exact_config):
        assert not check_consistency(d1, sigma1, exact_config).consistent

    def test_exact_backend_consistent_case(self, exact_config):
        dtd, sigma = teachers_family(2, consistent=True)
        result = check_consistency(dtd, sigma, exact_config)
        assert result.consistent
        assert satisfies_all(result.witness, sigma)
