"""Concurrent-client stress: coalescing stats, no cross-session leakage.

Twelve asyncio clients share one TCP server across three sessions whose
specifications give *different* verdicts for the same query text — so
any cross-session mix-up (a response cache serving another spec's entry,
a workspace answering another session's query) flips a verdict and
fails the per-client assertions.  The batcher must demonstrably coalesce
(``batches_coalesced``, ``batch_width``) while per-session serialization
keeps single-owner state safe; the ``"warm"`` run drives the shared
workspaces and the session cut pool under the same concurrency.
"""

import asyncio
import json

import pytest

from repro.constraints.parser import parse_constraints
from repro.dtd.serializer import dtd_to_string
from repro.encoding.combined import spec_fingerprint
from repro.service.registry import SessionRegistry
from repro.service.server import CheckingServer
from repro.workloads.generators import wide_flat_dtd

CLIENTS = 12
PHI_FORWARD = "t0.x <= t1.x"
PHI_BACKWARD = "t1.x <= t0.x"


def _specs():
    """Three sessions over one DTD, distinguished only by Sigma.

    The same two query texts get a different verdict pair from each
    spec, so a response leaking across sessions is caught immediately.
    """
    dtd = wide_flat_dtd(3)
    dtd_text = dtd_to_string(dtd)
    specs = []
    for sigma_text, verdicts in (
        (PHI_FORWARD, {PHI_FORWARD: True, PHI_BACKWARD: False}),
        ("", {PHI_FORWARD: False, PHI_BACKWARD: False}),
        (PHI_BACKWARD, {PHI_FORWARD: False, PHI_BACKWARD: True}),
    ):
        fingerprint = spec_fingerprint(dtd, parse_constraints(sigma_text))
        specs.append((dtd_text, sigma_text, fingerprint, verdicts))
    return specs


async def _client(host, port, spec, client_id):
    dtd_text, sigma_text, fingerprint, verdicts = spec
    reader, writer = await asyncio.open_connection(host, port)
    requests = []
    for index in range(6):
        phi = PHI_FORWARD if index % 2 == 0 else PHI_BACKWARD
        requests.append(
            {
                "id": f"{client_id}-{index}",
                "op": "implies",
                "dtd": dtd_text,
                "constraints": sigma_text,
                "phi": phi,
            }
        )
    requests.append(
        {
            "id": f"{client_id}-check",
            "op": "check",
            "dtd": dtd_text,
            "constraints": sigma_text,
        }
    )
    # Send the whole burst before reading anything: that is the client
    # shape the batcher coalesces.
    for request in requests:
        writer.write((json.dumps(request) + "\n").encode())
    await writer.drain()
    responses = {}
    for _ in requests:
        line = await reader.readline()
        assert line, "server closed mid-burst"
        response = json.loads(line)
        responses[response["id"]] = response
    writer.close()
    for request in requests:
        response = responses[request["id"]]
        assert response["ok"], response
        assert response["service"]["session"] == fingerprint, (
            f"client {client_id}: answered by a foreign session"
        )
        if request["op"] == "implies":
            assert response["result"]["implied"] == verdicts[request["phi"]], (
                f"client {client_id}: cross-session verdict leak for "
                f"{request['phi']!r}"
            )
        else:
            assert response["result"]["consistent"] is True
    return len(responses)


def test_shutdown_drains_deterministically():
    """Shutdown mid-burst: every request already received is answered
    (solved or shed — always structured), then the server stops on its
    own.  No grace-period timer is involved, so this cannot flake on a
    loaded machine: the stop is gated on the drain, not on a clock."""
    dtd_text, sigma_text, fingerprint, verdicts = _specs()[0]
    server = CheckingServer(SessionRegistry())
    host, port = server.start_background()

    async def burst():
        reader, writer = await asyncio.open_connection(host, port)
        requests = [
            {
                "id": f"pre-{index}",
                "op": "implies",
                "dtd": dtd_text,
                "constraints": sigma_text,
                "phi": PHI_FORWARD,
            }
            for index in range(5)
        ]
        requests.append({"id": "bye", "op": "shutdown"})
        requests.append(
            {
                "id": "late",
                "op": "implies",
                "dtd": dtd_text,
                "constraints": sigma_text,
                "phi": PHI_FORWARD,
            }
        )
        for request in requests:
            writer.write((json.dumps(request) + "\n").encode())
        await writer.drain()
        responses = {}
        while True:
            line = await reader.readline()
            if not line:
                break
            response = json.loads(line)
            responses[response["id"]] = response
        writer.close()
        return responses

    try:
        responses = asyncio.run(burst())
        # Every line the server read before stopping got an answer.
        for index in range(5):
            response = responses[f"pre-{index}"]
            assert response["ok"], response
            assert response["result"]["implied"] == verdicts[PHI_FORWARD]
        assert responses["bye"]["ok"]
        assert responses["bye"]["result"] == {"stopping": True}
        # A request read after shutdown is shed with structure, never
        # silently dropped mid-drain.
        if "late" in responses:
            late = responses["late"]
            assert not late["ok"]
            assert late["error"]["type"] == "overloaded"
        # The drain gates the stop: the serving thread exits by itself.
        server._thread.join(timeout=30)
        assert not server._thread.is_alive()
    finally:
        server.close()


@pytest.mark.parametrize("mode", ["replay", "warm"])
def test_concurrent_clients_coalesce_without_leaking(mode):
    server = CheckingServer(SessionRegistry(mode=mode))
    host, port = server.start_background()
    specs = _specs()

    async def run():
        return await asyncio.gather(
            *(
                _client(host, port, specs[index % len(specs)], index)
                for index in range(CLIENTS)
            )
        )

    try:
        answered = asyncio.run(run())
        assert sum(answered) == CLIENTS * 7
        stats = server.stats_payload()
        assert stats["server"]["errors"] == 0
        assert stats["registry"]["sessions"] == len(specs)
        assert stats["registry"]["sessions_evicted"] == 0
        # The batcher demonstrably coalesced concurrent implies.
        assert stats["server"]["batches_coalesced"] >= 1, stats["server"]
        assert stats["server"]["batch_width"] >= 2
        # Every request was answered by the session it addressed.
        per_session = stats["sessions"]
        assert len(per_session) == len(specs)
        assert (
            sum(entry["requests"] for entry in per_session.values())
            <= CLIENTS * 7
        )
        if mode == "warm":
            warmed = sum(
                entry["warm_workspaces"] for entry in per_session.values()
            )
            assert warmed >= 1, "warm mode never built a workspace"
    finally:
        server.close()
