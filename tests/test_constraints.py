"""Unit tests for constraint AST, classes, parser and satisfaction."""

import pytest

from repro.constraints.ast import (
    ForeignKey,
    InclusionConstraint,
    Key,
    NegInclusion,
    NegKey,
)
from repro.constraints.classes import (
    ConstraintClass,
    classify,
    expand_foreign_keys,
    is_primary_key_set,
    validate_constraints,
)
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.satisfaction import satisfies, satisfies_all, violations
from repro.errors import InvalidConstraintError, ParseError
from repro.workloads.examples import (
    figure1_tree,
    school_constraints_d3,
    school_document,
)
from repro.xmltree.builder import element
from repro.xmltree.model import XMLTree


class TestAst:
    def test_key_rejects_empty_attrs(self):
        with pytest.raises(ValueError):
            Key("a", ())

    def test_key_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Key("a", ("x", "x"))

    def test_inclusion_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            InclusionConstraint("a", ("x",), "b", ("y", "z"))

    def test_foreign_key_exposes_its_key(self):
        fk = ForeignKey(InclusionConstraint("a", ("x",), "b", ("y",)))
        assert fk.key == Key("b", ("y",))

    def test_unary_detection(self):
        assert Key("a", ("x",)).is_unary()
        assert not Key("a", ("x", "y")).is_unary()
        assert NegKey("a", "x").is_unary()

    def test_str_forms(self):
        assert str(Key("a", ("x",))) == "a.x -> a"
        assert str(Key("a", ("x", "y"))) == "a[x,y] -> a"
        assert str(NegInclusion("a", "x", "b", "y")) == "a.x !<= b.y"


class TestClassify:
    def test_empty(self):
        assert classify([]) == ConstraintClass.EMPTY

    def test_keys_only_any_arity(self):
        assert classify([Key("a", ("x", "y")), Key("b", ("z",))]) == ConstraintClass.K

    def test_multiattr_fk_is_k_fk(self):
        fk = ForeignKey(InclusionConstraint("a", ("x", "y"), "b", ("u", "v")))
        assert classify([fk]) == ConstraintClass.K_FK

    def test_unary_fk(self):
        fk = ForeignKey(InclusionConstraint("a", ("x",), "b", ("y",)))
        assert classify([fk]) == ConstraintClass.UNARY_K_FK

    def test_bare_inclusion_escalates(self):
        ic = InclusionConstraint("a", ("x",), "b", ("y",))
        assert classify([ic]) == ConstraintClass.UNARY_K_IC

    def test_negations_escalate(self):
        assert classify([NegKey("a", "x")]) == ConstraintClass.UNARY_KNEG_IC
        assert classify([NegInclusion("a", "x", "b", "y")]) == (
            ConstraintClass.UNARY_KNEG_ICNEG
        )

    def test_multiattr_with_negation_rejected(self):
        with pytest.raises(InvalidConstraintError):
            classify([Key("a", ("x", "y")), NegKey("a", "x"),
                      ForeignKey(InclusionConstraint("a", ("x",), "b", ("y",)))])


class TestValidate:
    def test_unknown_type_rejected(self, d1):
        with pytest.raises(InvalidConstraintError, match="ghost"):
            validate_constraints(d1, [Key("ghost", ("x",))])

    def test_unknown_attribute_rejected(self, d1):
        with pytest.raises(InvalidConstraintError, match="salary"):
            validate_constraints(d1, [Key("teacher", ("salary",))])

    def test_valid_set_passes(self, d1, sigma1):
        validate_constraints(d1, sigma1)


class TestExpandAndPrimary:
    def test_expand_splits_fk(self):
        fk = ForeignKey(InclusionConstraint("a", ("x",), "b", ("y",)))
        expanded = expand_foreign_keys([fk])
        assert InclusionConstraint("a", ("x",), "b", ("y",)) in expanded
        assert Key("b", ("y",)) in expanded
        assert all(not isinstance(phi, ForeignKey) for phi in expanded)

    def test_expand_deduplicates(self):
        fk = ForeignKey(InclusionConstraint("a", ("x",), "b", ("y",)))
        expanded = expand_foreign_keys([fk, Key("b", ("y",))])
        assert len(expanded) == 2

    def test_primary_ok_with_one_key_per_type(self):
        assert is_primary_key_set([Key("a", ("x",)), Key("b", ("y",))])

    def test_two_keys_same_type_not_primary(self):
        assert not is_primary_key_set([Key("a", ("x",)), Key("a", ("y",))])

    def test_fk_induced_key_counts(self):
        fk = ForeignKey(InclusionConstraint("a", ("x",), "b", ("y",)))
        assert not is_primary_key_set([fk, Key("b", ("z",))])
        assert is_primary_key_set([fk, Key("b", ("y",))])  # same key twice


class TestParser:
    def test_unary_key(self):
        assert parse_constraint("teacher.name -> teacher") == Key(
            "teacher", ("name",)
        )

    def test_multi_key(self):
        assert parse_constraint("course[dept, course_no] -> course") == Key(
            "course", ("dept", "course_no")
        )

    def test_inclusion_ascii_and_unicode(self):
        expected = InclusionConstraint("a", ("x",), "b", ("y",))
        assert parse_constraint("a.x <= b.y") == expected
        assert parse_constraint("a.x ⊆ b.y") == expected

    def test_foreign_key(self):
        fk = parse_constraint("a.x => b.y")
        assert isinstance(fk, ForeignKey)
        assert fk.key == Key("b", ("y",))

    def test_negations(self):
        assert parse_constraint("a.x !-> a") == NegKey("a", "x")
        assert parse_constraint("a.x !<= b.y") == NegInclusion("a", "x", "b", "y")
        assert parse_constraint("a.x ⊄ b.y") == NegInclusion("a", "x", "b", "y")

    def test_key_must_target_own_type(self):
        with pytest.raises(ParseError):
            parse_constraint("a.x -> b")

    def test_multiattr_negation_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("a[x,y] !-> a")

    def test_block_parsing_with_comments(self):
        sigma = parse_constraints(
            """
            a.x -> a     # key
            a.x <= b.y; b.y -> b
            """
        )
        assert len(sigma) == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("a[x,y] <= b[z]")


class TestSatisfaction:
    def test_figure1_violates_subject_key(self, sigma1):
        tree = figure1_tree()
        violated = violations(tree, sigma1)
        assert [str(phi) for phi in violated] == ["subject.taught_by -> subject"]

    def test_school_document_satisfies_d3_constraints(self):
        assert satisfies_all(school_document(), school_constraints_d3())

    def test_multiattr_key_violation_detected(self):
        doc = school_document()
        enrolls = doc.ext("enroll")
        enrolls[1].attrs.update(enrolls[0].attrs)
        key = parse_constraint("enroll[student_id,dept,course_no] -> enroll")
        assert not satisfies(doc, key)

    def test_inclusion_over_lists_respects_order(self):
        tree = XMLTree(
            element("r", element("a", x="1", y="2"), element("b", u="2", v="1"))
        )
        ok = parse_constraint("a[x,y] <= b[v,u]")
        swapped = parse_constraint("a[x,y] <= b[u,v]")
        assert satisfies(tree, ok)
        assert not satisfies(tree, swapped)

    def test_foreign_key_needs_both_parts(self):
        tree = XMLTree(
            element("r", element("a", x="1"),
                    element("b", y="1"), element("b", y="1"))
        )
        fk = parse_constraint("a.x => b.y")
        assert satisfies(tree, fk.inclusion)
        assert not satisfies(tree, fk)  # duplicate b.y breaks the key part

    def test_negations_are_logical_negations(self):
        tree = XMLTree(element("r", element("a", x="1"), element("a", x="1")))
        assert satisfies(tree, NegKey("a", "x"))
        assert not satisfies(tree, Key("a", ("x",)))

    def test_neg_inclusion_requires_witness(self):
        # Empty child extent: inclusion holds vacuously, negation fails.
        tree = XMLTree(element("r", element("b", y="1")))
        assert satisfies(tree, parse_constraint("a.x <= b.y"))
        assert not satisfies(tree, parse_constraint("a.x !<= b.y"))
