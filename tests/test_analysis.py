"""Tests for extent-bounds analysis and specification diagnostics."""

import pytest

from repro.analysis.diagnostics import (
    diagnose,
    mus,
    redundant_constraints,
)
from repro.analysis.extent_bounds import extent_bounds
from repro.checkers.consistency import check_consistency
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.dtd.model import DTD
from repro.errors import InvalidConstraintError


class TestExtentBounds:
    def test_d1_subject_bounds(self, d1):
        bounds = extent_bounds(d1, [], "subject")
        # Each teacher teaches exactly two subjects; one teacher minimum.
        assert bounds.minimum == 2
        assert bounds.maximum is None  # teacher* is unbounded

    def test_d1_with_sigma1_fragment(self, d1):
        # The key alone: |subject| still = 2|teacher|.
        sigma = parse_constraints("subject.taught_by -> subject")
        bounds = extent_bounds(d1, sigma, "subject")
        assert bounds.minimum == 2

    def test_inconsistent_spec_returns_none(self, d1, sigma1):
        assert extent_bounds(d1, sigma1, "subject") is None

    def test_fixed_count(self):
        d = DTD.build("r", {"r": "(a, a, a)", "a": "EMPTY"})
        bounds = extent_bounds(d, [], "a")
        assert bounds.minimum == 3
        assert bounds.maximum == 3

    def test_bounded_range_via_choice(self):
        d = DTD.build("r", {"r": "(a?, a?)", "a": "EMPTY"})
        bounds = extent_bounds(d, [], "a")
        assert bounds.minimum == 0
        assert bounds.maximum == 2
        assert 1 in bounds
        assert 3 not in bounds

    def test_constraint_raises_minimum(self):
        # A negated key demands at least two a's.
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]})
        bounds = extent_bounds(d, parse_constraints("a.x !-> a"), "a")
        assert bounds.minimum == 2

    def test_constraint_caps_maximum(self):
        # fact count pinned to 1 by the DTD; dim.id -> dim with
        # dim.id <= fact.ref forces |dim| <= |fact| = 1.
        d = DTD.build(
            "r", {"r": "(fact, dim*)", "fact": "EMPTY", "dim": "EMPTY"},
            attrs={"fact": ["ref"], "dim": ["id"]},
        )
        sigma = parse_constraints("dim.id -> dim\ndim.id <= fact.ref")
        bounds = extent_bounds(d, sigma, "dim")
        assert bounds.maximum == 1

    def test_unknown_type_rejected(self, d1):
        with pytest.raises(InvalidConstraintError):
            extent_bounds(d1, [], "ghost")

    def test_str_rendering(self):
        d = DTD.build("r", {"r": "(a)", "a": "EMPTY"})
        assert "in [1, 1]" in str(extent_bounds(d, [], "a"))


class TestMus:
    def test_sigma1_core(self, d1, sigma1):
        core = mus(d1, sigma1)
        assert sorted(str(phi) for phi in core) == [
            "subject.taught_by -> subject",
            "subject.taught_by => teacher.name",
        ]
        # The subset itself is inconsistent and removing anything fixes it.
        assert not check_consistency(d1, core).consistent
        for index in range(len(core)):
            rest = core[:index] + core[index + 1:]
            assert check_consistency(d1, rest).consistent

    def test_consistent_input_rejected(self, d1):
        with pytest.raises(InvalidConstraintError, match="consistent"):
            mus(d1, [])

    def test_empty_dtd_blames_nothing(self, d2):
        d2a = DTD.build("db", {"db": "(foo)", "foo": "(foo)"},
                        attrs={"foo": ["k"]})
        core = mus(d2a, parse_constraints("foo.k -> foo"))
        assert core == []

    def test_direct_contradiction(self):
        d = DTD.build("r", {"r": "(a*)", "a": "EMPTY"}, attrs={"a": ["x"]})
        sigma = parse_constraints("a.x -> a\na.x !-> a\na.x <= a.x")
        core = mus(d, sigma, method="deletion")
        assert sorted(str(phi) for phi in core) == ["a.x !-> a", "a.x -> a"]


class TestRedundancy:
    def test_subsumed_inclusion_redundant(self):
        d = DTD.build(
            "r", {"r": "(a*, b*, c*)", "a": "EMPTY", "b": "EMPTY", "c": "EMPTY"},
            attrs={t: ["x"] for t in "abc"},
        )
        sigma = parse_constraints("a.x <= b.x\nb.x <= c.x\na.x <= c.x")
        redundant = redundant_constraints(d, sigma)
        assert [str(phi) for phi in redundant] == ["a.x <= c.x"]

    def test_mutually_implied_pair_both_reported(self):
        d = DTD.build("r", {"r": "(a)", "a": "EMPTY"}, attrs={"a": ["x", "y"]})
        # Only one 'a' element can exist, so both keys hold vacuously.
        sigma = parse_constraints("a.x -> a\na.y -> a")
        redundant = redundant_constraints(d, sigma)
        assert len(redundant) == 2

    def test_independent_constraints_not_redundant(self):
        d = DTD.build(
            "r", {"r": "(a*, b*)", "a": "EMPTY", "b": "EMPTY"},
            attrs={"a": ["x"], "b": ["y"]},
        )
        sigma = parse_constraints("a.x -> a\nb.y -> b")
        assert redundant_constraints(d, sigma) == []


class TestDiagnose:
    def test_inconsistent_report(self, d1, sigma1):
        report = diagnose(d1, sigma1)
        assert not report.consistent
        assert len(report.mus) == 2
        assert "INCONSISTENT" in report.summary()

    def test_consistent_report_with_redundancy(self):
        d = DTD.build(
            "r", {"r": "(a*, b*, c*)", "a": "EMPTY", "b": "EMPTY", "c": "EMPTY"},
            attrs={t: ["x"] for t in "abc"},
        )
        sigma = parse_constraints("a.x <= b.x\nb.x <= c.x\na.x <= c.x")
        report = diagnose(d, sigma)
        assert report.consistent
        assert [str(phi) for phi in report.redundant] == ["a.x <= c.x"]
        assert "CONSISTENT" in report.summary()
        assert "redundant" in report.summary()

    def test_unsatisfiable_dtd_report(self, d2):
        report = diagnose(d2, [])
        assert not report.consistent
        assert not report.dtd_satisfiable
        assert "no finite document" in report.summary()
